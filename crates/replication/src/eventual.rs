//! Asynchronous multi-master replication ("eventual consistency proper").
//!
//! Every replica accepts reads and writes locally and propagates updates
//! asynchronously, by eager one-way broadcast ([`EventualConfig::eager`])
//! and/or periodic push-pull anti-entropy gossip
//! ([`EventualConfig::gossip`]). Conflicts are resolved by the configured
//! [`ConflictMode`]:
//!
//! * [`ConflictMode::Lww`] — last-writer-wins on Lamport stamps (loses one
//!   of two concurrent writes; experiment E6 counts how many).
//! * [`ConflictMode::Siblings`] — dotted-version-vector siblings exposed to
//!   the client (the Dynamo model).
//! * [`ConflictMode::Counter`] — values are PN-counters merged as CRDTs
//!   (writes are increments; nothing is ever lost).
//!
//! Clients are scripted sessions ([`EventualClient`]) that can enforce the
//! four Bayou session guarantees client-side (see
//! [`crate::common::Guarantees`]): read floors with bounded retries for
//! RYW/MR, Lamport-stamp piggybacking for MW/WFR.

use crate::common::{ClientCore, Guarantees, IssueOp, OpOutcome, ScriptOp, TimerAction};
use clocks::{LamportClock, LamportTimestamp, VersionVector};
use crdt::{CvRdt, PnCounter};
use kvstore::{siblings::Sibling, Key, MvStore, SiblingStore, Value, Wal};
use obs::EventKind;
use simnet::{Actor, Context, Duration, NodeId, OpKind, SharedTrace, SimTime, SpanStatus};
use std::collections::BTreeMap;

/// Conflict-resolution policy for the replicated store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictMode {
    /// Last-writer-wins on `(Lamport counter, replica)` stamps.
    Lww,
    /// Keep concurrent siblings (dotted version vectors).
    Siblings,
    /// Values are PN-counters; a write of `v` means "increment by v".
    Counter,
}

/// Gossip (anti-entropy) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Interval between gossip rounds.
    pub interval: Duration,
    /// Number of peers contacted per round.
    pub fanout: usize,
}

/// Configuration for one eventual-consistency deployment.
#[derive(Debug, Clone)]
pub struct EventualConfig {
    /// Number of replicas (node ids `0..replicas`).
    pub replicas: usize,
    /// Eagerly broadcast each write to all peers (asynchronously).
    pub eager: bool,
    /// Periodic anti-entropy; `None` disables gossip.
    pub gossip: Option<GossipConfig>,
    /// Conflict policy.
    pub mode: ConflictMode,
}

impl EventualConfig {
    /// Eager broadcast + gossip every 50 ms, LWW: a sensible default.
    pub fn default_lww(replicas: usize) -> Self {
        EventualConfig {
            replicas,
            eager: true,
            gossip: Some(GossipConfig { interval: Duration::from_millis(50), fanout: 1 }),
            mode: ConflictMode::Lww,
        }
    }
}

/// One replicated data item in flight.
#[derive(Debug, Clone)]
pub enum Item {
    /// An LWW version.
    Lww {
        /// Key.
        key: Key,
        /// Unique write id.
        value: u64,
        /// LWW stamp.
        ts: LamportTimestamp,
        /// Origin write time (µs).
        written_at: u64,
    },
    /// A DVV sibling.
    Sib {
        /// Key.
        key: Key,
        /// The sibling (value + dotted version vector).
        sibling: Sibling,
    },
    /// Full CRDT counter state for a key.
    Counter {
        /// Key.
        key: Key,
        /// Counter state.
        state: PnCounter,
    },
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client read request.
    Get {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
    },
    /// Read response.
    GetResp {
        /// Client op id.
        op_id: u64,
        /// Observed values (unique write ids); empty if key absent.
        values: Vec<u64>,
        /// Max stamp across returned versions (LWW/sibling modes).
        stamp: Option<(u64, u64)>,
        /// Origin write time of the newest returned version (µs).
        version_ts: Option<u64>,
        /// Causal context (sibling mode; empty otherwise).
        ctx: VersionVector,
    },
    /// Client write request.
    Put {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
        /// Unique write id (or increment amount in counter mode).
        value: u64,
        /// Highest stamp the session has observed (MW/WFR piggyback).
        observed: (u64, u64),
        /// Client causal context (sibling mode).
        ctx: VersionVector,
    },
    /// Write acknowledgement.
    PutResp {
        /// Client op id.
        op_id: u64,
        /// Stamp the replica assigned.
        stamp: (u64, u64),
    },
    /// Eager asynchronous replication of fresh writes.
    Replicate {
        /// Items to apply.
        items: Vec<Item>,
    },
    /// Gossip round 1: the initiator's digest.
    SyncReq {
        /// `(key, latest stamp)` for LWW; `(key, context summary)` is
        /// carried via `vv_digest` for sibling mode.
        digest: Vec<(Key, LamportTimestamp)>,
        /// Sibling-mode digest: per-key joint event sets.
        vv_digest: Vec<(Key, VersionVector)>,
    },
    /// Gossip round 2: items the responder has that the initiator lacks,
    /// plus the responder's digest for the reverse fill.
    SyncResp {
        /// Items newer at the responder.
        items: Vec<Item>,
        /// Responder's digest.
        digest: Vec<(Key, LamportTimestamp)>,
        /// Responder's sibling-mode digest.
        vv_digest: Vec<(Key, VersionVector)>,
    },
    /// Gossip round 3: reverse fill.
    SyncPush {
        /// Items newer at the initiator.
        items: Vec<Item>,
    },
}

/// LWW and sibling-mode gossip digests, paired.
type Digests = (Vec<(Key, LamportTimestamp)>, Vec<(Key, VersionVector)>);

/// Replica-side storage, by conflict mode.
#[derive(Debug)]
enum Store {
    Lww(MvStore),
    Sib(SiblingStore),
    Counter(BTreeMap<Key, PnCounter>),
}

const TAG_GOSSIP: u64 = 1;

/// A replica actor.
pub struct EventualReplica {
    cfg: EventualConfig,
    store: Store,
    /// Durable log of adopted LWW versions; replayed on amnesia restart.
    /// Sibling and counter state is modeled volatile (anti-entropy refills
    /// it from peers), so only LWW mode writes here.
    wal: Wal,
    clock: LamportClock,
}

impl EventualReplica {
    /// Create a replica (its node id is assigned by the simulator; the
    /// replica learns it from the context on first callback).
    pub fn new(cfg: EventualConfig) -> Self {
        let store = match cfg.mode {
            ConflictMode::Lww => Store::Lww(MvStore::new()),
            // Actor id is patched on first use; 0 placeholder is safe
            // because `SiblingStore::new` only fixes the dot-minting id.
            ConflictMode::Siblings => Store::Sib(SiblingStore::new(u64::MAX)),
            ConflictMode::Counter => Store::Counter(BTreeMap::new()),
        };
        EventualReplica { cfg, store, wal: Wal::new(), clock: LamportClock::new() }
    }

    /// Read access to the LWW store (experiments check convergence).
    pub fn lww_store(&self) -> Option<&MvStore> {
        match &self.store {
            Store::Lww(s) => Some(s),
            _ => None,
        }
    }

    /// Read access to the sibling store.
    pub fn sibling_store(&self) -> Option<&SiblingStore> {
        match &self.store {
            Store::Sib(s) => Some(s),
            _ => None,
        }
    }

    /// Counter value for `key` (counter mode).
    pub fn counter_value(&self, key: Key) -> Option<i64> {
        match &self.store {
            Store::Counter(m) => m.get(&key).map(|c| c.value()),
            _ => None,
        }
    }

    fn ensure_sib_actor(&mut self, me: NodeId) {
        if let Store::Sib(s) = &mut self.store {
            if s.key_count() == 0 {
                // Re-key the store to this node id before first write.
                *s = SiblingStore::new(me.0 as u64);
            }
        }
    }

    fn peers(&self, me: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.cfg.replicas).map(NodeId).filter(move |&n| n != me)
    }

    fn digest(&self) -> Digests {
        match &self.store {
            Store::Lww(s) => (s.scan(..).map(|(k, v)| (k, v.ts)).collect(), Vec::new()),
            Store::Sib(s) => (Vec::new(), s.keys().map(|k| (k, s.read(k).context)).collect()),
            // Counters have no cheap digest; gossip ships full state.
            Store::Counter(_) => (Vec::new(), Vec::new()),
        }
    }

    /// Items this replica has that the remote digest lacks.
    fn missing_at_remote(
        &self,
        digest: &[(Key, LamportTimestamp)],
        vv_digest: &[(Key, VersionVector)],
    ) -> Vec<Item> {
        match &self.store {
            Store::Lww(s) => {
                let remote: BTreeMap<Key, LamportTimestamp> = digest.iter().copied().collect();
                s.scan(..)
                    .filter(|(k, v)| remote.get(k).map(|&ts| v.ts > ts).unwrap_or(true))
                    .map(|(k, v)| Item::Lww {
                        key: k,
                        value: v.value.as_u64().unwrap_or(0),
                        ts: v.ts,
                        written_at: v.written_at,
                    })
                    .collect()
            }
            Store::Sib(s) => {
                let remote: BTreeMap<Key, &VersionVector> =
                    vv_digest.iter().map(|(k, vv)| (*k, vv)).collect();
                let mut items = Vec::new();
                for k in s.keys().collect::<Vec<_>>() {
                    for sib in s.siblings(k) {
                        let unseen =
                            remote.get(&k).map(|vv| !sib.dvv.covered_by(vv)).unwrap_or(true);
                        if unseen {
                            items.push(Item::Sib { key: k, sibling: sib.clone() });
                        }
                    }
                }
                items
            }
            Store::Counter(m) => {
                m.iter().map(|(&k, c)| Item::Counter { key: k, state: c.clone() }).collect()
            }
        }
    }

    /// Apply replicated items; returns how many changed local state plus
    /// the keys left with concurrent siblings (detected conflicts).
    // A guard with a side effect (clippy's collapse suggestion) would be
    // worse than the nested `if`.
    #[allow(clippy::collapsible_match)]
    fn apply_items(
        &mut self,
        ctx: &mut Context<Msg>,
        items: Vec<Item>,
    ) -> (usize, Vec<(Key, u64)>) {
        let mut changed = 0;
        let mut conflicts = Vec::new();
        for item in items {
            match (&mut self.store, item) {
                (Store::Lww(s), Item::Lww { key, value, ts, written_at }) => {
                    // Keep the Lamport clock ahead of everything stored.
                    self.clock.observe(ts, 0);
                    let v = Value::from_u64(value);
                    // Log exactly the adopted versions so a WAL replay
                    // rebuilds this store byte-for-byte.
                    if s.put(key, v.clone(), ts, written_at) {
                        ctx.record(EventKind::WalAppend {
                            node: ctx.self_id().0 as u64,
                            key,
                            bytes: v.len() as u64,
                        });
                        self.wal.append(key, v, ts, written_at);
                        changed += 1;
                    }
                }
                (Store::Sib(s), Item::Sib { key, sibling }) => {
                    if s.apply_remote(key, sibling) {
                        changed += 1;
                        let n = s.siblings(key).len();
                        if n > 1 {
                            conflicts.push((key, n as u64));
                        }
                    }
                }
                (Store::Counter(m), Item::Counter { key, state }) => {
                    let e = m.entry(key).or_default();
                    let before = e.clone();
                    e.merge(&state);
                    if *e != before {
                        changed += 1;
                    }
                }
                // Mode mismatch: a deployment bug; drop the item.
                _ => {}
            }
        }
        (changed, conflicts)
    }

    /// Record one [`EventKind::ConflictDetected`] per conflicted key.
    fn record_conflicts(ctx: &mut Context<Msg>, conflicts: Vec<(Key, u64)>) {
        let node = ctx.self_id().0 as u64;
        for (key, siblings) in conflicts {
            ctx.record(EventKind::ConflictDetected { node, key, siblings });
        }
    }

    fn handle_get(&mut self, ctx: &mut Context<Msg>, from: NodeId, op_id: u64, key: Key) {
        let span = ctx.span_open("replica_read");
        let resp = match &self.store {
            Store::Lww(s) => match s.get(key) {
                Some(v) => Msg::GetResp {
                    op_id,
                    values: v.value.as_u64().into_iter().collect(),
                    stamp: Some((v.ts.counter, v.ts.actor)),
                    version_ts: Some(v.written_at),
                    ctx: VersionVector::new(),
                },
                None => Msg::GetResp {
                    op_id,
                    values: vec![],
                    stamp: None,
                    version_ts: None,
                    ctx: VersionVector::new(),
                },
            },
            Store::Sib(s) => {
                let r = s.read(key);
                let newest = s.siblings(key).iter().map(|x| x.written_at).max();
                Msg::GetResp {
                    op_id,
                    values: r.values.iter().filter_map(|v| v.as_u64()).collect(),
                    stamp: Some((r.context.total(), 0)),
                    version_ts: newest,
                    ctx: r.context,
                }
            }
            Store::Counter(m) => {
                let v = m.get(&key).map(|c| c.value()).unwrap_or(0);
                Msg::GetResp {
                    op_id,
                    values: vec![v as u64],
                    stamp: None,
                    version_ts: None,
                    ctx: VersionVector::new(),
                }
            }
        };
        ctx.send(from, resp);
        ctx.span_close(span, SpanStatus::Ok);
    }

    #[allow(clippy::too_many_arguments)] // one parameter per wire field
    fn handle_put(
        &mut self,
        ctx: &mut Context<Msg>,
        from: NodeId,
        op_id: u64,
        key: Key,
        value: u64,
        observed: (u64, u64),
        client_ctx: VersionVector,
    ) {
        let me = ctx.self_id();
        self.ensure_sib_actor(me);
        let span = ctx.span_open("replica_write");
        let now_us = ctx.now().as_micros();
        let (stamp, items) = match &mut self.store {
            Store::Lww(s) => {
                // Piggybacked session stamp keeps MW/WFR ordering: tick past
                // everything the session has observed.
                self.clock.observe(LamportTimestamp::new(observed.0, observed.1), me.0 as u64);
                let ts = self.clock.tick(me.0 as u64);
                let v = Value::from_u64(value);
                if s.put(key, v.clone(), ts, now_us) {
                    ctx.record(EventKind::WalAppend {
                        node: me.0 as u64,
                        key,
                        bytes: v.len() as u64,
                    });
                    self.wal.append(key, v, ts, now_us);
                }
                ((ts.counter, ts.actor), vec![Item::Lww { key, value, ts, written_at: now_us }])
            }
            Store::Sib(s) => {
                let before = s.siblings(key).len();
                s.write(key, Value::from_u64(value), &client_ctx, now_us);
                let after = s.siblings(key).len();
                let node = me.0 as u64;
                if after > 1 {
                    // The write landed next to concurrent siblings.
                    ctx.record(EventKind::ConflictDetected { node, key, siblings: after as u64 });
                } else if before > 1 {
                    // The client's context covered every sibling: resolved.
                    ctx.record(EventKind::ConflictResolved { node, key, survivors: 1 });
                }
                let sib = s.siblings(key).last().expect("just wrote").clone();
                ((s.read(key).context.total(), 0), vec![Item::Sib { key, sibling: sib }])
            }
            Store::Counter(m) => {
                let c = m.entry(key).or_default();
                c.increment(me.0 as u64, value);
                ((0, 0), vec![Item::Counter { key, state: c.clone() }])
            }
        };
        ctx.send(from, Msg::PutResp { op_id, stamp });
        if self.cfg.eager {
            // Still inside the replica span, so the eager fan-out is part
            // of the write's span tree.
            let peers: Vec<NodeId> = self.peers(me).collect();
            for p in peers {
                ctx.send(p, Msg::Replicate { items: items.clone() });
            }
        }
        ctx.span_close(span, SpanStatus::Ok);
    }

    fn start_gossip_round(&mut self, ctx: &mut Context<Msg>) {
        let me = ctx.self_id();
        let peers: Vec<NodeId> = self.peers(me).collect();
        if peers.is_empty() {
            return;
        }
        let fanout = self.cfg.gossip.map(|g| g.fanout).unwrap_or(1).min(peers.len());
        ctx.record(EventKind::AntiEntropyRound { node: me.0 as u64, fanout: fanout as u64 });
        let (digest, vv_digest) = self.digest();
        // Choose `fanout` distinct peers.
        let mut idxs: Vec<usize> = (0..peers.len()).collect();
        ctx.rng().shuffle(&mut idxs);
        for &i in idxs.iter().take(fanout) {
            ctx.send(
                peers[i],
                Msg::SyncReq { digest: digest.clone(), vv_digest: vv_digest.clone() },
            );
        }
    }
}

impl Actor<Msg> for EventualReplica {
    fn key_versions(&self) -> Vec<(u64, u64)> {
        match &self.store {
            // Unique write ids identify LWW versions directly.
            Store::Lww(s) => s.scan(..).map(|(k, v)| (k, v.value.as_u64().unwrap_or(0))).collect(),
            // Sibling sets are fingerprinted order-independently (XOR of
            // values + count): replicas holding different sets diverge.
            Store::Sib(s) => s
                .keys()
                .map(|k| {
                    let sibs = s.siblings(k);
                    let fp = sibs
                        .iter()
                        .filter_map(|x| x.value.as_u64())
                        .fold(sibs.len() as u64, |acc, v| acc ^ v);
                    (k, fp)
                })
                .collect(),
            // A counter's "version" is its current value.
            Store::Counter(m) => m.iter().map(|(&k, c)| (k, c.value() as u64)).collect(),
        }
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        if let Some(g) = self.cfg.gossip {
            // Desynchronize replicas' rounds.
            let jitter = ctx.rng().below(g.interval.as_micros().max(1));
            ctx.set_timer(Duration::from_micros(jitter), TAG_GOSSIP);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if tag == TAG_GOSSIP {
            if let Some(g) = self.cfg.gossip {
                self.start_gossip_round(ctx);
                ctx.set_timer(g.interval, TAG_GOSSIP);
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>, amnesia: bool) {
        if amnesia {
            let me = ctx.self_id();
            match self.cfg.mode {
                ConflictMode::Lww => {
                    // LWW versions are durable: rebuild store and clock
                    // from the WAL.
                    self.store = Store::Lww(self.wal.recover(None));
                    for rec in self.wal.tail(0) {
                        self.clock.observe(rec.ts, 0);
                    }
                    ctx.record(EventKind::WalReplay {
                        node: me.0 as u64,
                        records: self.wal.len() as u64,
                    });
                }
                // Sibling and counter state is modeled volatile: the
                // replica restarts empty and anti-entropy refills it from
                // peers — the convergence path the protocol already has.
                ConflictMode::Siblings => self.store = Store::Sib(SiblingStore::new(u64::MAX)),
                ConflictMode::Counter => self.store = Store::Counter(BTreeMap::new()),
            }
        }
        // The crash killed the gossip timer chain; re-arm it with the same
        // jitter `on_start` uses.
        if let Some(g) = self.cfg.gossip {
            let jitter = ctx.rng().below(g.interval.as_micros().max(1));
            ctx.set_timer(Duration::from_micros(jitter), TAG_GOSSIP);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Get { op_id, key } => self.handle_get(ctx, from, op_id, key),
            Msg::Put { op_id, key, value, observed, ctx: client_ctx } => {
                self.handle_put(ctx, from, op_id, key, value, observed, client_ctx)
            }
            Msg::Replicate { items } => {
                // Traced when the originating write was (envelope context);
                // inert for untraced background traffic.
                let span = ctx.span_open("replicate_apply");
                let (_, conflicts) = self.apply_items(ctx, items);
                Self::record_conflicts(ctx, conflicts);
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::SyncReq { digest, vv_digest } => {
                let items = self.missing_at_remote(&digest, &vv_digest);
                let (my_digest, my_vv) = self.digest();
                ctx.send(from, Msg::SyncResp { items, digest: my_digest, vv_digest: my_vv });
            }
            Msg::SyncResp { items, digest, vv_digest } => {
                let (_, conflicts) = self.apply_items(ctx, items);
                Self::record_conflicts(ctx, conflicts);
                let back = self.missing_at_remote(&digest, &vv_digest);
                if !back.is_empty() {
                    ctx.send(from, Msg::SyncPush { items: back });
                }
            }
            Msg::SyncPush { items } => {
                let (_, conflicts) = self.apply_items(ctx, items);
                Self::record_conflicts(ctx, conflicts);
            }
            // Responses are client-side messages; a replica ignores them.
            Msg::GetResp { .. } | Msg::PutResp { .. } => {}
        }
    }
}

/// Which replica a client targets per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetPolicy {
    /// Always the same ("home" / nearest) replica.
    Sticky(NodeId),
    /// A uniformly random replica per operation (load-balanced anycast —
    /// the setting where session-guarantee violations show up).
    Random,
}

const TAG_RETRY: u64 = 2;

/// A scripted client session for the eventual protocol.
pub struct EventualClient {
    core: ClientCore,
    replicas: usize,
    policy: TargetPolicy,
    guarantees: Guarantees,
    mode: ConflictMode,
    /// Per-key stamp floors for RYW/MR retries.
    floors: BTreeMap<Key, (u64, u64)>,
    /// Highest stamp observed (MW/WFR piggyback).
    observed: (u64, u64),
    /// Per-key causal contexts (sibling mode).
    contexts: BTreeMap<Key, VersionVector>,
    /// Bounded retries per read for guarantee enforcement.
    max_retries: u32,
    /// Count of guarantee-driven retries performed (exported metric).
    pub guarantee_retries: u64,
    current_target: NodeId,
}

impl EventualClient {
    /// Create a client session.
    #[allow(clippy::too_many_arguments)] // deployment parameters, named at the call site
    pub fn new(
        session: u64,
        script: Vec<ScriptOp>,
        trace: SharedTrace,
        replicas: usize,
        policy: TargetPolicy,
        guarantees: Guarantees,
        mode: ConflictMode,
    ) -> Self {
        let start_target = match policy {
            TargetPolicy::Sticky(n) => n,
            TargetPolicy::Random => NodeId(0),
        };
        EventualClient {
            core: ClientCore::new(session, script, trace, Duration::from_millis(500)),
            replicas,
            policy,
            guarantees,
            mode,
            floors: BTreeMap::new(),
            observed: (0, 0),
            contexts: BTreeMap::new(),
            max_retries: 20,
            guarantee_retries: 0,
            current_target: start_target,
        }
    }

    fn pick_target(&mut self, ctx: &mut Context<Msg>) -> NodeId {
        match self.policy {
            TargetPolicy::Sticky(n) => n,
            TargetPolicy::Random => NodeId(ctx.rng().index(self.replicas)),
        }
    }

    fn send_op(&mut self, ctx: &mut Context<Msg>, op: IssueOp, target: NodeId) {
        self.current_target = target;
        let msg = match op.kind {
            OpKind::Read => Msg::Get { op_id: op.op_id, key: op.key },
            OpKind::Write => Msg::Put {
                op_id: op.op_id,
                key: op.key,
                value: op.value.expect("write without value"),
                observed: self.observed,
                ctx: self.contexts.get(&op.key).cloned().unwrap_or_default(),
            },
        };
        ctx.send(target, msg);
    }

    /// Does `stamp` satisfy the session's floor for `key`?
    fn floor_met(&self, key: Key, stamp: Option<(u64, u64)>) -> bool {
        match self.floors.get(&key) {
            None => true,
            Some(&floor) => stamp.map(|s| s >= floor).unwrap_or(false),
        }
    }
}

impl Actor<Msg> for EventualClient {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.core.start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if tag == TAG_RETRY {
            let target = self.pick_target(ctx);
            if let Some(op) = self.core.retry(ctx, target) {
                self.send_op(ctx, op, target);
            }
            return;
        }
        let target = self.pick_target(ctx);
        match self.core.handle_timer(ctx, tag, target) {
            TimerAction::Issue(op) => self.send_op(ctx, op, target),
            TimerAction::TimedOut(_) | TimerAction::None => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::GetResp { op_id, values, stamp, version_ts, ctx: read_ctx } => {
                if self.core.pending_op() != Some(op_id) {
                    return; // late response for a timed-out op
                }
                let key = self.core.pending_key().expect("pending read has a key");
                // Guarantee enforcement: retry while below the floor.
                if self.guarantees.any_read_guarantee()
                    && self.mode == ConflictMode::Lww
                    && !self.floor_met(key, stamp)
                    && self.core.pending_retries() < self.max_retries
                {
                    self.guarantee_retries += 1;
                    ctx.set_timer(Duration::from_millis(2), TAG_RETRY);
                    return;
                }
                if self.mode == ConflictMode::Siblings {
                    self.contexts.insert(key, read_ctx);
                }
                if let Some(s) = stamp {
                    if self.guarantees.monotonic_reads {
                        let f = self.floors.entry(key).or_insert((0, 0));
                        *f = (*f).max(s);
                    }
                    if self.guarantees.writes_follow_reads {
                        self.observed = self.observed.max(s);
                    }
                }
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome {
                        ok: true,
                        values,
                        stamp,
                        version_ts: version_ts.map(SimTime::from_micros),
                    },
                );
            }
            Msg::PutResp { op_id, stamp } => {
                if self.core.pending_op() != Some(op_id) {
                    return;
                }
                let key = self.core.pending_key().expect("pending write has a key");
                if self.guarantees.read_your_writes {
                    let f = self.floors.entry(key).or_insert((0, 0));
                    *f = (*f).max(stamp);
                }
                if self.guarantees.monotonic_writes {
                    self.observed = self.observed.max(stamp);
                }
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome { ok: true, values: vec![], stamp: Some(stamp), version_ts: None },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{optrace, LatencyModel, Sim, SimConfig};

    fn build_sim(cfg: EventualConfig, clients: Vec<EventualClient>, seed: u64) -> Sim<Msg> {
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(seed)
                .latency(LatencyModel::Constant(Duration::from_millis(5))),
        );
        for _ in 0..cfg.replicas {
            sim.add_node(Box::new(EventualReplica::new(cfg.clone())));
        }
        for c in clients {
            sim.add_node(Box::new(c));
        }
        sim
    }

    fn script(ops: &[(OpKind, Key)]) -> Vec<ScriptOp> {
        ops.iter().map(|&(kind, key)| ScriptOp { gap_us: 1_000, kind, key }).collect()
    }

    #[test]
    fn write_then_read_same_replica() {
        let trace = optrace::shared_trace();
        let cfg = EventualConfig::default_lww(3);
        let client = EventualClient::new(
            1,
            script(&[(OpKind::Write, 7), (OpKind::Read, 7)]),
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut sim = build_sim(cfg, vec![client], 1);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        assert_eq!(t.len(), 2);
        let read = &t.records()[1];
        assert!(read.ok);
        assert_eq!(read.value_read, vec![ClientCore::unique_value(1, 1)]);
        assert!(read.stamp.is_some());
    }

    #[test]
    fn eager_broadcast_converges_replicas() {
        // Eager-only (no gossip): a write at replica 0 must be readable at
        // every other replica shortly after one network delay.
        let trace = optrace::shared_trace();
        let cfg = EventualConfig { gossip: None, ..EventualConfig::default_lww(3) };
        let writer = EventualClient::new(
            1,
            script(&[(OpKind::Write, 1)]),
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut clients = vec![writer];
        for (s, replica) in [(2u64, 1usize), (3, 2)] {
            clients.push(EventualClient::new(
                s,
                vec![ScriptOp { gap_us: 100_000, kind: OpKind::Read, key: 1 }],
                trace.clone(),
                3,
                TargetPolicy::Sticky(NodeId(replica)),
                Guarantees::none(),
                ConflictMode::Lww,
            ));
        }
        let mut sim = build_sim(cfg, clients, 2);
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        let reads: Vec<_> = t.records().iter().filter(|r| r.kind == OpKind::Read).collect();
        assert_eq!(reads.len(), 2);
        for r in reads {
            assert_eq!(
                r.value_read,
                vec![ClientCore::unique_value(1, 1)],
                "replica {} did not receive the eager broadcast",
                r.replica
            );
        }
    }

    #[test]
    fn gossip_propagates_without_eager() {
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: false,
            gossip: Some(GossipConfig { interval: Duration::from_millis(20), fanout: 2 }),
            ..EventualConfig::default_lww(3)
        };
        // Writer writes at replica 0; reader reads key at replica 2 after
        // plenty of gossip rounds.
        let writer = EventualClient::new(
            1,
            script(&[(OpKind::Write, 5)]),
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut reader_script = vec![ScriptOp { gap_us: 500_000, kind: OpKind::Read, key: 5 }];
        reader_script.push(ScriptOp { gap_us: 1_000, kind: OpKind::Read, key: 5 });
        let reader = EventualClient::new(
            2,
            reader_script,
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(2)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut sim = build_sim(cfg, vec![writer, reader], 3);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        let reads: Vec<_> = t.records().iter().filter(|r| r.kind == OpKind::Read).collect();
        assert_eq!(reads.len(), 2);
        assert_eq!(
            reads[0].value_read,
            vec![ClientCore::unique_value(1, 1)],
            "gossip must have propagated the write within 500ms"
        );
    }

    #[test]
    fn floor_mechanism() {
        // Unit-level check of the RYW/MR floor predicate.
        let trace = optrace::shared_trace();
        let mut c = EventualClient::new(
            1,
            vec![],
            trace,
            2,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::all(),
            ConflictMode::Lww,
        );
        assert!(c.floor_met(1, None));
        c.floors.insert(1, (5, 0));
        assert!(!c.floor_met(1, Some((4, 9))));
        assert!(c.floor_met(1, Some((5, 0))));
        assert!(c.floor_met(1, Some((6, 0))));
        assert!(!c.floor_met(1, None));
    }

    #[test]
    fn ryw_enforcement_retries_until_fresh() {
        // A session with Random targets writes then reads many times with
        // gossip-only propagation. With RYW on, every read that follows a
        // write of the same key must return a stamp >= the write's stamp.
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: false,
            gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 1 }),
            ..EventualConfig::default_lww(3)
        };
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push((OpKind::Write, 7));
            ops.push((OpKind::Read, 7));
        }
        let client = EventualClient::new(
            1,
            script(&ops),
            trace.clone(),
            3,
            TargetPolicy::Random,
            Guarantees { read_your_writes: true, ..Guarantees::none() },
            ConflictMode::Lww,
        );
        let mut sim = build_sim(cfg, vec![client], 11);
        sim.run_until(SimTime::from_secs(10));
        let t = trace.borrow();
        assert_eq!(t.len(), 20, "all ops completed");
        let mut last_write_stamp: Option<(u64, u64)> = None;
        for r in t.records() {
            match r.kind {
                OpKind::Write => last_write_stamp = r.stamp,
                OpKind::Read => {
                    if let Some(w) = last_write_stamp {
                        let s = r.stamp.expect("read returned a stamp");
                        assert!(s >= w, "RYW violated: read {s:?} < write {w:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn counter_mode_sums_concurrent_increments() {
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: true,
            gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 2 }),
            mode: ConflictMode::Counter,
            replicas: 3,
        };
        // Three sessions increment the same counter key at three replicas;
        // a final read must see the sum (increment amount = the unique
        // value, so expected sum = sum of unique values).
        let mut clients = Vec::new();
        let mut expected: i64 = 0;
        for s in 1..=3u64 {
            expected += ClientCore::unique_value(s, 1) as i64;
            clients.push(EventualClient::new(
                s,
                script(&[(OpKind::Write, 9)]),
                trace.clone(),
                3,
                TargetPolicy::Sticky(NodeId((s - 1) as usize)),
                Guarantees::none(),
                ConflictMode::Counter,
            ));
        }
        clients.push(EventualClient::new(
            4,
            vec![ScriptOp { gap_us: 300_000, kind: OpKind::Read, key: 9 }],
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(1)),
            Guarantees::none(),
            ConflictMode::Counter,
        ));
        let mut sim = build_sim(cfg, clients, 5);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).expect("read recorded");
        assert_eq!(read.value_read, vec![expected as u64]);
    }

    #[test]
    fn sibling_mode_exposes_concurrent_writes() {
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: true,
            gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 2 }),
            mode: ConflictMode::Siblings,
            replicas: 2,
        };
        let w1 = EventualClient::new(
            1,
            script(&[(OpKind::Write, 4)]),
            trace.clone(),
            2,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Siblings,
        );
        let w2 = EventualClient::new(
            2,
            script(&[(OpKind::Write, 4)]),
            trace.clone(),
            2,
            TargetPolicy::Sticky(NodeId(1)),
            Guarantees::none(),
            ConflictMode::Siblings,
        );
        let reader = EventualClient::new(
            3,
            vec![ScriptOp { gap_us: 200_000, kind: OpKind::Read, key: 4 }],
            trace.clone(),
            2,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Siblings,
        );
        let mut sim = build_sim(cfg, vec![w1, w2, reader], 6);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        let mut vals = read.value_read.clone();
        vals.sort_unstable();
        assert_eq!(
            vals,
            vec![ClientCore::unique_value(1, 1), ClientCore::unique_value(2, 1)],
            "both concurrent writes must surface as siblings"
        );
    }
}
