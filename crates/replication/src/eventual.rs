//! Asynchronous multi-master replication ("eventual consistency proper").
//!
//! Every replica accepts reads and writes locally and propagates updates
//! by eager one-way broadcast ([`EventualConfig::eager`]) and/or periodic
//! push-pull anti-entropy gossip ([`EventualConfig::gossip`]). This is
//! the kernel's multi-master replica: storage and merges come from
//! [`crate::kernel::resolution::ResolvingStore`], crash behaviour from
//! [`crate::kernel::durability`], and gossip/ack mechanics from
//! [`crate::kernel::propagation`]. Conflicts are resolved by the
//! configured [`ConflictMode`]:
//!
//! * [`ConflictMode::Lww`] — last-writer-wins on Lamport stamps (loses one
//!   of two concurrent writes; experiment E6 counts how many).
//! * [`ConflictMode::Siblings`] — dotted-version-vector siblings exposed to
//!   the client (the Dynamo model).
//! * [`ConflictMode::Counter`] — values are PN-counters merged as CRDTs
//!   (writes are increments; nothing is ever lost).
//!
//! Two kernel knobs extend the legacy protocol into new compositions:
//! [`EventualConfig::eager_acks`] withholds the client ack until that
//! many peers confirm durable application (a synchronous flavour of
//! update-anywhere), and [`EventualConfig::durability`] chooses what an
//! amnesia crash erases (the legacy protocol persists exactly the
//! adopted LWW versions; `FsyncedState` keeps everything).
//!
//! Clients are scripted sessions ([`EventualClient`]) that can enforce the
//! four Bayou session guarantees client-side (see
//! [`crate::common::Guarantees`]): read floors with bounded retries for
//! RYW/MR, Lamport-stamp piggybacking for MW/WFR.

use crate::common::{ClientCore, Guarantees, IssueOp, OpOutcome, ScriptOp, TimerAction};
use crate::kernel::durability::{DurabilityPolicy, WalState};
use crate::kernel::propagation::{AckTracker, Gossip, PeerCache};
use crate::kernel::resolution::{Digests, ResolvingStore, WriteEffect};
use clocks::{LamportClock, LamportTimestamp, VersionVector};
use kvstore::Key;
use obs::EventKind;
use simnet::{Actor, Context, Duration, NodeId, OpKind, SharedTrace, SimTime, SpanStatus};
use std::collections::BTreeMap;

pub use crate::kernel::propagation::GossipConfig;
pub use crate::kernel::resolution::{ConflictMode, Item};

/// Configuration for one eventual-consistency deployment.
#[derive(Debug, Clone)]
pub struct EventualConfig {
    /// Number of replicas (node ids `0..replicas`).
    pub replicas: usize,
    /// Eagerly broadcast each write to all peers (asynchronously).
    pub eager: bool,
    /// Periodic anti-entropy; `None` disables gossip.
    pub gossip: Option<GossipConfig>,
    /// Conflict policy.
    pub mode: ConflictMode,
    /// Peer acks required before the client's write is acknowledged
    /// (requires [`EventualConfig::eager`]; 0 = legacy fire-and-forget).
    pub eager_acks: usize,
    /// What survives an amnesia crash. The legacy protocol is
    /// [`DurabilityPolicy::WalReplay`]: adopted LWW versions are logged
    /// and replayed; sibling and counter state is modeled volatile
    /// (anti-entropy refills it from peers).
    pub durability: DurabilityPolicy,
}

impl EventualConfig {
    /// Eager broadcast + gossip every 50 ms, LWW: a sensible default.
    pub fn default_lww(replicas: usize) -> Self {
        EventualConfig {
            replicas,
            eager: true,
            gossip: Some(GossipConfig { interval: Duration::from_millis(50), fanout: 1 }),
            mode: ConflictMode::Lww,
            eager_acks: 0,
            durability: DurabilityPolicy::WalReplay,
        }
    }
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client read request.
    Get {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
    },
    /// Read response.
    GetResp {
        /// Client op id.
        op_id: u64,
        /// Observed values (unique write ids); empty if key absent.
        values: Vec<u64>,
        /// Max stamp across returned versions (LWW/sibling modes).
        stamp: Option<(u64, u64)>,
        /// Origin write time of the newest returned version (µs).
        version_ts: Option<u64>,
        /// Causal context (sibling mode; empty otherwise).
        ctx: VersionVector,
    },
    /// Client write request.
    Put {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
        /// Unique write id (or increment amount in counter mode).
        value: u64,
        /// Highest stamp the session has observed (MW/WFR piggyback).
        observed: (u64, u64),
        /// Client causal context (sibling mode).
        ctx: VersionVector,
    },
    /// Write acknowledgement.
    PutResp {
        /// Client op id.
        op_id: u64,
        /// Stamp the replica assigned.
        stamp: (u64, u64),
    },
    /// Eager asynchronous replication of fresh writes.
    Replicate {
        /// Items to apply.
        items: Vec<Item>,
        /// When set, the receiver confirms durable application with a
        /// [`Msg::ReplicateAck`] carrying this request id (the
        /// eager-acked composition; `None` is fire-and-forget).
        ack: Option<u64>,
    },
    /// Durable-application confirmation for an acked [`Msg::Replicate`].
    ReplicateAck {
        /// The originator's request id.
        req: u64,
    },
    /// Gossip round 1: the initiator's digest.
    SyncReq {
        /// `(key, latest stamp)` for LWW; `(key, context summary)` is
        /// carried via `vv_digest` for sibling mode.
        digest: Vec<(Key, LamportTimestamp)>,
        /// Sibling-mode digest: per-key joint event sets.
        vv_digest: Vec<(Key, VersionVector)>,
    },
    /// Gossip round 2: items the responder has that the initiator lacks,
    /// plus the responder's digest for the reverse fill.
    SyncResp {
        /// Items newer at the responder.
        items: Vec<Item>,
        /// Responder's digest.
        digest: Vec<(Key, LamportTimestamp)>,
        /// Responder's sibling-mode digest.
        vv_digest: Vec<(Key, VersionVector)>,
    },
    /// Gossip round 3: reverse fill.
    SyncPush {
        /// Items newer at the initiator.
        items: Vec<Item>,
    },
}

impl simnet::MsgMeta for Msg {
    fn variant_name(&self) -> &'static str {
        match self {
            Msg::Get { .. } => "get",
            Msg::GetResp { .. } => "get_resp",
            Msg::Put { .. } => "put",
            Msg::PutResp { .. } => "put_resp",
            Msg::Replicate { .. } => "replicate",
            Msg::ReplicateAck { .. } => "replicate_ack",
            Msg::SyncReq { .. } => "sync_req",
            Msg::SyncResp { .. } => "sync_resp",
            Msg::SyncPush { .. } => "sync_push",
        }
    }
}

const TAG_GOSSIP: u64 = 1;

/// A write awaiting peer acks before the client is acknowledged
/// (volatile coordination state: an amnesia crash drops it and the
/// client times out).
#[derive(Debug)]
struct PendingWrite {
    client: NodeId,
    op_id: u64,
    stamp: (u64, u64),
    tracker: AckTracker,
}

/// A replica actor.
pub struct EventualReplica {
    cfg: EventualConfig,
    store: ResolvingStore,
    /// Durable log of adopted LWW versions; replayed on amnesia restart
    /// under [`DurabilityPolicy::WalReplay`].
    dur: WalState,
    clock: LamportClock,
    /// Eager-acked writes awaiting their peer quorum.
    pending: BTreeMap<u64, PendingWrite>,
    next_req: u64,
    /// Reusable fan-out peer list (membership is fixed for a run).
    peer_cache: PeerCache,
}

impl EventualReplica {
    /// Create a replica (its node id is assigned by the simulator; the
    /// replica learns it from the context on first callback).
    pub fn new(cfg: EventualConfig) -> Self {
        let store = ResolvingStore::new(cfg.mode.policy());
        EventualReplica {
            cfg,
            store,
            dur: WalState::new(),
            clock: LamportClock::new(),
            pending: BTreeMap::new(),
            next_req: 1,
            peer_cache: PeerCache::default(),
        }
    }

    /// Read access to the LWW store (experiments check convergence).
    pub fn lww_store(&self) -> Option<&kvstore::MvStore> {
        self.store.lww()
    }

    /// Read access to the sibling store.
    pub fn sibling_store(&self) -> Option<&kvstore::SiblingStore> {
        self.store.siblings()
    }

    /// Counter value for `key` (counter mode).
    pub fn counter_value(&self, key: Key) -> Option<i64> {
        self.store.counter_value(key)
    }

    /// Whether adopted LWW versions go to the WAL under the configured
    /// durability policy.
    fn wal_enabled(&self) -> bool {
        matches!(
            self.cfg.durability,
            DurabilityPolicy::WalReplay | DurabilityPolicy::CheckpointedWal
        )
    }

    fn gossip(&self) -> Option<Gossip> {
        self.cfg.gossip.map(|g| Gossip::new(g, TAG_GOSSIP))
    }

    /// Log and record a local write's durable/observable effect.
    fn apply_effect(&mut self, ctx: &mut Context<Msg>, effect: WriteEffect) {
        let node = ctx.self_id().0 as u64;
        match effect {
            WriteEffect::Adopted { key, value, ts, written_at } => {
                if self.wal_enabled() {
                    self.dur.log(ctx, key, value, ts, written_at);
                }
            }
            WriteEffect::SiblingConflict { key, siblings } => {
                ctx.record(EventKind::ConflictDetected { node, key, siblings });
            }
            WriteEffect::SiblingResolved { key } => {
                ctx.record(EventKind::ConflictResolved { node, key, survivors: 1 });
            }
            WriteEffect::None => {}
        }
    }

    /// Apply replicated items and log whatever the WAL must capture;
    /// returns the keys left with concurrent siblings.
    fn apply_and_log(&mut self, ctx: &mut Context<Msg>, items: Vec<Item>) -> Vec<(Key, u64)> {
        let out = self.store.apply(items, &mut self.clock);
        if self.wal_enabled() {
            for (key, value, ts, written_at) in out.adopted {
                self.dur.log(ctx, key, value, ts, written_at);
            }
        }
        out.conflicts
    }

    /// Record one [`EventKind::ConflictDetected`] per conflicted key.
    fn record_conflicts(ctx: &mut Context<Msg>, conflicts: Vec<(Key, u64)>) {
        let node = ctx.self_id().0 as u64;
        for (key, siblings) in conflicts {
            ctx.record(EventKind::ConflictDetected { node, key, siblings });
        }
    }

    fn handle_get(&mut self, ctx: &mut Context<Msg>, from: NodeId, op_id: u64, key: Key) {
        let span = ctx.span_open("replica_read");
        let view = self.store.read(key);
        ctx.send(
            from,
            Msg::GetResp {
                op_id,
                values: view.values,
                stamp: view.stamp,
                version_ts: view.version_ts,
                ctx: view.ctx,
            },
        );
        ctx.span_close(span, SpanStatus::Ok);
    }

    #[allow(clippy::too_many_arguments)] // one parameter per wire field
    fn handle_put(
        &mut self,
        ctx: &mut Context<Msg>,
        from: NodeId,
        op_id: u64,
        key: Key,
        value: u64,
        observed: (u64, u64),
        client_ctx: VersionVector,
    ) {
        let me = ctx.self_id();
        let span = ctx.span_open("replica_write");
        let now_us = ctx.now().as_micros();
        let out =
            self.store.write_local(me, key, value, observed, &client_ctx, now_us, &mut self.clock);
        self.apply_effect(ctx, out.effect);
        let all_peers = self.peer_cache.take(self.cfg.replicas, me);
        let need = if self.cfg.eager { self.cfg.eager_acks.min(all_peers.len()) } else { 0 };
        if need == 0 {
            ctx.send(from, Msg::PutResp { op_id, stamp: out.stamp });
            if self.cfg.eager {
                // Still inside the replica span, so the eager fan-out is
                // part of the write's span tree. The last peer takes the
                // item buffer itself instead of a clone — this fan-out is
                // the write hot path.
                if let Some((&last, rest)) = all_peers.split_last() {
                    for &p in rest {
                        ctx.send(p, Msg::Replicate { items: out.items.clone(), ack: None });
                    }
                    ctx.send(last, Msg::Replicate { items: out.items, ack: None });
                }
            }
        } else {
            // Eager-acked composition: the client ack waits for `need`
            // peers to confirm durable application.
            let req = self.next_req;
            self.next_req += 1;
            self.pending.insert(
                req,
                PendingWrite {
                    client: from,
                    op_id,
                    stamp: out.stamp,
                    tracker: AckTracker::new(need),
                },
            );
            // As above: move the buffer into the final send.
            if let Some((&last, rest)) = all_peers.split_last() {
                for &p in rest {
                    ctx.send(p, Msg::Replicate { items: out.items.clone(), ack: Some(req) });
                }
                ctx.send(last, Msg::Replicate { items: out.items, ack: Some(req) });
            }
        }
        self.peer_cache.restore(all_peers);
        ctx.span_close(span, SpanStatus::Ok);
    }

    fn start_gossip_round(&mut self, ctx: &mut Context<Msg>) {
        let me = ctx.self_id();
        let all_peers = self.peer_cache.take(self.cfg.replicas, me);
        if all_peers.is_empty() {
            self.peer_cache.restore(all_peers);
            return;
        }
        let gossip = self.gossip().expect("gossip round without gossip config");
        let fanout = gossip.cfg.fanout.min(all_peers.len());
        ctx.record(EventKind::AntiEntropyRound { node: me.0 as u64, fanout: fanout as u64 });
        let (digest, vv_digest): Digests = self.store.digest();
        for target in gossip.choose_targets(ctx, &all_peers) {
            ctx.send(target, Msg::SyncReq { digest: digest.clone(), vv_digest: vv_digest.clone() });
        }
        self.peer_cache.restore(all_peers);
    }
}

impl Actor<Msg> for EventualReplica {
    fn role(&self) -> &'static str {
        "replica"
    }

    fn key_versions(&self) -> Vec<(u64, u64)> {
        self.store.key_versions()
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        if let Some(g) = self.gossip() {
            // Desynchronize replicas' rounds.
            g.arm_jittered(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if tag == TAG_GOSSIP {
            if let Some(g) = self.gossip() {
                self.start_gossip_round(ctx);
                g.rearm(ctx);
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>, amnesia: bool) {
        if amnesia {
            // In-flight ack coordination is always volatile: affected
            // clients time out and retry.
            self.pending.clear();
            match self.cfg.durability {
                // Everything applied was fsynced before acknowledgement;
                // the store survives as-is.
                DurabilityPolicy::FsyncedState => {}
                DurabilityPolicy::WalReplay | DurabilityPolicy::CheckpointedWal => {
                    match self.cfg.mode {
                        // LWW versions are durable: rebuild store and
                        // clock from the WAL.
                        ConflictMode::Lww => {
                            self.store = ResolvingStore::Lww(self.dur.replay(
                                ctx,
                                None,
                                Some(&mut self.clock),
                            ));
                        }
                        // Sibling and counter state is modeled volatile:
                        // the replica restarts empty and anti-entropy
                        // refills it from peers — the convergence path
                        // the protocol already has.
                        ConflictMode::Siblings | ConflictMode::Counter => self.store.reset(),
                    }
                }
                DurabilityPolicy::Volatile => self.store.reset(),
            }
        }
        // The crash killed the gossip timer chain; re-arm it with the same
        // jitter `on_start` uses.
        if let Some(g) = self.gossip() {
            g.arm_jittered(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Get { op_id, key } => self.handle_get(ctx, from, op_id, key),
            Msg::Put { op_id, key, value, observed, ctx: client_ctx } => {
                self.handle_put(ctx, from, op_id, key, value, observed, client_ctx)
            }
            Msg::Replicate { items, ack } => {
                // Traced when the originating write was (envelope context);
                // inert for untraced background traffic.
                let span = ctx.span_open("replicate_apply");
                let conflicts = self.apply_and_log(ctx, items);
                Self::record_conflicts(ctx, conflicts);
                if let Some(req) = ack {
                    // The WAL append above is the durable point; confirm.
                    ctx.send(from, Msg::ReplicateAck { req });
                }
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::ReplicateAck { req } => {
                if let Some(p) = self.pending.get_mut(&req) {
                    if p.tracker.ack(from) {
                        let p = self.pending.remove(&req).expect("pending entry exists");
                        ctx.send(p.client, Msg::PutResp { op_id: p.op_id, stamp: p.stamp });
                    }
                }
            }
            Msg::SyncReq { digest, vv_digest } => {
                let items = self.store.missing_at_remote(&digest, &vv_digest);
                let (my_digest, my_vv) = self.store.digest();
                ctx.send(from, Msg::SyncResp { items, digest: my_digest, vv_digest: my_vv });
            }
            Msg::SyncResp { items, digest, vv_digest } => {
                let conflicts = self.apply_and_log(ctx, items);
                Self::record_conflicts(ctx, conflicts);
                let back = self.store.missing_at_remote(&digest, &vv_digest);
                if !back.is_empty() {
                    ctx.send(from, Msg::SyncPush { items: back });
                }
            }
            Msg::SyncPush { items } => {
                let conflicts = self.apply_and_log(ctx, items);
                Self::record_conflicts(ctx, conflicts);
            }
            // Responses are client-side messages; a replica ignores them.
            Msg::GetResp { .. } | Msg::PutResp { .. } => {}
        }
    }
}

/// Which replica a client targets per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetPolicy {
    /// Always the same ("home" / nearest) replica.
    Sticky(NodeId),
    /// A uniformly random replica per operation (load-balanced anycast —
    /// the setting where session-guarantee violations show up).
    Random,
}

const TAG_RETRY: u64 = 2;

/// A scripted client session for the eventual protocol.
pub struct EventualClient {
    core: ClientCore,
    replicas: usize,
    policy: TargetPolicy,
    guarantees: Guarantees,
    mode: ConflictMode,
    /// Per-key stamp floors for RYW/MR retries.
    floors: BTreeMap<Key, (u64, u64)>,
    /// Highest stamp observed (MW/WFR piggyback).
    observed: (u64, u64),
    /// Per-key causal contexts (sibling mode).
    contexts: BTreeMap<Key, VersionVector>,
    /// Bounded retries per read for guarantee enforcement.
    max_retries: u32,
    /// Count of guarantee-driven retries performed (exported metric).
    pub guarantee_retries: u64,
    current_target: NodeId,
}

impl EventualClient {
    /// Create a client session.
    #[allow(clippy::too_many_arguments)] // deployment parameters, named at the call site
    pub fn new(
        session: u64,
        script: Vec<ScriptOp>,
        trace: SharedTrace,
        replicas: usize,
        policy: TargetPolicy,
        guarantees: Guarantees,
        mode: ConflictMode,
    ) -> Self {
        let start_target = match policy {
            TargetPolicy::Sticky(n) => n,
            TargetPolicy::Random => NodeId(0),
        };
        EventualClient {
            core: ClientCore::new(session, script, trace, Duration::from_millis(500)),
            replicas,
            policy,
            guarantees,
            mode,
            floors: BTreeMap::new(),
            observed: (0, 0),
            contexts: BTreeMap::new(),
            max_retries: 20,
            guarantee_retries: 0,
            current_target: start_target,
        }
    }

    fn pick_target(&mut self, ctx: &mut Context<Msg>) -> NodeId {
        match self.policy {
            TargetPolicy::Sticky(n) => n,
            TargetPolicy::Random => NodeId(ctx.rng().index(self.replicas) as u32),
        }
    }

    fn send_op(&mut self, ctx: &mut Context<Msg>, op: IssueOp, target: NodeId) {
        self.current_target = target;
        let msg = match op.kind {
            OpKind::Read => Msg::Get { op_id: op.op_id, key: op.key },
            OpKind::Write => Msg::Put {
                op_id: op.op_id,
                key: op.key,
                value: op.value.expect("write without value"),
                observed: self.observed,
                ctx: self.contexts.get(&op.key).cloned().unwrap_or_default(),
            },
        };
        ctx.send(target, msg);
    }

    /// Does `stamp` satisfy the session's floor for `key`?
    fn floor_met(&self, key: Key, stamp: Option<(u64, u64)>) -> bool {
        match self.floors.get(&key) {
            None => true,
            Some(&floor) => stamp.map(|s| s >= floor).unwrap_or(false),
        }
    }
}

impl Actor<Msg> for EventualClient {
    fn role(&self) -> &'static str {
        "client"
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.core.start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if tag == TAG_RETRY {
            let target = self.pick_target(ctx);
            if let Some(op) = self.core.retry(ctx, target) {
                self.send_op(ctx, op, target);
            }
            return;
        }
        let target = self.pick_target(ctx);
        match self.core.handle_timer(ctx, tag, target) {
            TimerAction::Issue(op) => self.send_op(ctx, op, target),
            TimerAction::TimedOut(_) | TimerAction::None => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::GetResp { op_id, values, stamp, version_ts, ctx: read_ctx } => {
                if self.core.pending_op() != Some(op_id) {
                    return; // late response for a timed-out op
                }
                let key = self.core.pending_key().expect("pending read has a key");
                // Guarantee enforcement: retry while below the floor.
                if self.guarantees.any_read_guarantee()
                    && self.mode == ConflictMode::Lww
                    && !self.floor_met(key, stamp)
                    && self.core.pending_retries() < self.max_retries
                {
                    self.guarantee_retries += 1;
                    ctx.set_timer(Duration::from_millis(2), TAG_RETRY);
                    return;
                }
                if self.mode == ConflictMode::Siblings {
                    self.contexts.insert(key, read_ctx);
                }
                if let Some(s) = stamp {
                    if self.guarantees.monotonic_reads {
                        let f = self.floors.entry(key).or_insert((0, 0));
                        *f = (*f).max(s);
                    }
                    if self.guarantees.writes_follow_reads {
                        self.observed = self.observed.max(s);
                    }
                }
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome {
                        ok: true,
                        values,
                        stamp,
                        version_ts: version_ts.map(SimTime::from_micros),
                    },
                );
            }
            Msg::PutResp { op_id, stamp } => {
                if self.core.pending_op() != Some(op_id) {
                    return;
                }
                let key = self.core.pending_key().expect("pending write has a key");
                if self.guarantees.read_your_writes {
                    let f = self.floors.entry(key).or_insert((0, 0));
                    *f = (*f).max(stamp);
                }
                if self.guarantees.monotonic_writes {
                    self.observed = self.observed.max(stamp);
                }
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome { ok: true, values: vec![], stamp: Some(stamp), version_ts: None },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{optrace, LatencyModel, Sim, SimConfig};

    fn build_sim(cfg: EventualConfig, clients: Vec<EventualClient>, seed: u64) -> Sim<Msg> {
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(seed)
                .latency(LatencyModel::Constant(Duration::from_millis(5))),
        );
        for _ in 0..cfg.replicas {
            sim.add_node(Box::new(EventualReplica::new(cfg.clone())));
        }
        for c in clients {
            sim.add_node(Box::new(c));
        }
        sim
    }

    fn script(ops: &[(OpKind, Key)]) -> Vec<ScriptOp> {
        ops.iter().map(|&(kind, key)| ScriptOp { gap_us: 1_000, kind, key }).collect()
    }

    #[test]
    fn write_then_read_same_replica() {
        let trace = optrace::shared_trace();
        let cfg = EventualConfig::default_lww(3);
        let client = EventualClient::new(
            1,
            script(&[(OpKind::Write, 7), (OpKind::Read, 7)]),
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut sim = build_sim(cfg, vec![client], 1);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        assert_eq!(t.len(), 2);
        let read = &t.records()[1];
        assert!(read.ok);
        assert_eq!(read.value_read, vec![ClientCore::unique_value(1, 1)]);
        assert!(read.stamp.is_some());
    }

    #[test]
    fn eager_broadcast_converges_replicas() {
        // Eager-only (no gossip): a write at replica 0 must be readable at
        // every other replica shortly after one network delay.
        let trace = optrace::shared_trace();
        let cfg = EventualConfig { gossip: None, ..EventualConfig::default_lww(3) };
        let writer = EventualClient::new(
            1,
            script(&[(OpKind::Write, 1)]),
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut clients = vec![writer];
        for (s, replica) in [(2u64, 1u32), (3, 2)] {
            clients.push(EventualClient::new(
                s,
                vec![ScriptOp { gap_us: 100_000, kind: OpKind::Read, key: 1 }],
                trace.clone(),
                3,
                TargetPolicy::Sticky(NodeId(replica)),
                Guarantees::none(),
                ConflictMode::Lww,
            ));
        }
        let mut sim = build_sim(cfg, clients, 2);
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        let reads: Vec<_> = t.records().iter().filter(|r| r.kind == OpKind::Read).collect();
        assert_eq!(reads.len(), 2);
        for r in reads {
            assert_eq!(
                r.value_read,
                vec![ClientCore::unique_value(1, 1)],
                "replica {} did not receive the eager broadcast",
                r.replica
            );
        }
    }

    #[test]
    fn gossip_propagates_without_eager() {
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: false,
            gossip: Some(GossipConfig { interval: Duration::from_millis(20), fanout: 2 }),
            ..EventualConfig::default_lww(3)
        };
        // Writer writes at replica 0; reader reads key at replica 2 after
        // plenty of gossip rounds.
        let writer = EventualClient::new(
            1,
            script(&[(OpKind::Write, 5)]),
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut reader_script = vec![ScriptOp { gap_us: 500_000, kind: OpKind::Read, key: 5 }];
        reader_script.push(ScriptOp { gap_us: 1_000, kind: OpKind::Read, key: 5 });
        let reader = EventualClient::new(
            2,
            reader_script,
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(2)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut sim = build_sim(cfg, vec![writer, reader], 3);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        let reads: Vec<_> = t.records().iter().filter(|r| r.kind == OpKind::Read).collect();
        assert_eq!(reads.len(), 2);
        assert_eq!(
            reads[0].value_read,
            vec![ClientCore::unique_value(1, 1)],
            "gossip must have propagated the write within 500ms"
        );
    }

    #[test]
    fn floor_mechanism() {
        // Unit-level check of the RYW/MR floor predicate.
        let trace = optrace::shared_trace();
        let mut c = EventualClient::new(
            1,
            vec![],
            trace,
            2,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::all(),
            ConflictMode::Lww,
        );
        assert!(c.floor_met(1, None));
        c.floors.insert(1, (5, 0));
        assert!(!c.floor_met(1, Some((4, 9))));
        assert!(c.floor_met(1, Some((5, 0))));
        assert!(c.floor_met(1, Some((6, 0))));
        assert!(!c.floor_met(1, None));
    }

    #[test]
    fn ryw_enforcement_retries_until_fresh() {
        // A session with Random targets writes then reads many times with
        // gossip-only propagation. With RYW on, every read that follows a
        // write of the same key must return a stamp >= the write's stamp.
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: false,
            gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 1 }),
            ..EventualConfig::default_lww(3)
        };
        let mut ops = Vec::new();
        for _ in 0..10 {
            ops.push((OpKind::Write, 7));
            ops.push((OpKind::Read, 7));
        }
        let client = EventualClient::new(
            1,
            script(&ops),
            trace.clone(),
            3,
            TargetPolicy::Random,
            Guarantees { read_your_writes: true, ..Guarantees::none() },
            ConflictMode::Lww,
        );
        let mut sim = build_sim(cfg, vec![client], 11);
        sim.run_until(SimTime::from_secs(10));
        let t = trace.borrow();
        assert_eq!(t.len(), 20, "all ops completed");
        let mut last_write_stamp: Option<(u64, u64)> = None;
        for r in t.records() {
            match r.kind {
                OpKind::Write => last_write_stamp = r.stamp,
                OpKind::Read => {
                    if let Some(w) = last_write_stamp {
                        let s = r.stamp.expect("read returned a stamp");
                        assert!(s >= w, "RYW violated: read {s:?} < write {w:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn counter_mode_sums_concurrent_increments() {
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: true,
            gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 2 }),
            mode: ConflictMode::Counter,
            ..EventualConfig::default_lww(3)
        };
        // Three sessions increment the same counter key at three replicas;
        // a final read must see the sum (increment amount = the unique
        // value, so expected sum = sum of unique values).
        let mut clients = Vec::new();
        let mut expected: i64 = 0;
        for s in 1..=3u64 {
            expected += ClientCore::unique_value(s, 1) as i64;
            clients.push(EventualClient::new(
                s,
                script(&[(OpKind::Write, 9)]),
                trace.clone(),
                3,
                TargetPolicy::Sticky(NodeId((s - 1) as u32)),
                Guarantees::none(),
                ConflictMode::Counter,
            ));
        }
        clients.push(EventualClient::new(
            4,
            vec![ScriptOp { gap_us: 300_000, kind: OpKind::Read, key: 9 }],
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(1)),
            Guarantees::none(),
            ConflictMode::Counter,
        ));
        let mut sim = build_sim(cfg, clients, 5);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).expect("read recorded");
        assert_eq!(read.value_read, vec![expected as u64]);
    }

    #[test]
    fn sibling_mode_exposes_concurrent_writes() {
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: true,
            gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 2 }),
            mode: ConflictMode::Siblings,
            replicas: 2,
            ..EventualConfig::default_lww(2)
        };
        let w1 = EventualClient::new(
            1,
            script(&[(OpKind::Write, 4)]),
            trace.clone(),
            2,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Siblings,
        );
        let w2 = EventualClient::new(
            2,
            script(&[(OpKind::Write, 4)]),
            trace.clone(),
            2,
            TargetPolicy::Sticky(NodeId(1)),
            Guarantees::none(),
            ConflictMode::Siblings,
        );
        let reader = EventualClient::new(
            3,
            vec![ScriptOp { gap_us: 200_000, kind: OpKind::Read, key: 4 }],
            trace.clone(),
            2,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Siblings,
        );
        let mut sim = build_sim(cfg, vec![w1, w2, reader], 6);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        let mut vals = read.value_read.clone();
        vals.sort_unstable();
        assert_eq!(
            vals,
            vec![ClientCore::unique_value(1, 1), ClientCore::unique_value(2, 1)],
            "both concurrent writes must surface as siblings"
        );
    }

    #[test]
    fn eager_acked_defers_put_resp_until_all_peers_apply() {
        // acks = replicas - 1: by the time the client sees PutResp, every
        // replica holds the write, so an immediate read anywhere is fresh.
        let trace = optrace::shared_trace();
        let cfg = EventualConfig { eager_acks: 2, ..EventualConfig::default_lww(3) };
        let writer = EventualClient::new(
            1,
            script(&[(OpKind::Write, 7), (OpKind::Read, 7)]),
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        // A remote reader that reads right after the writer's ack window.
        let reader = EventualClient::new(
            2,
            vec![ScriptOp { gap_us: 50_000, kind: OpKind::Read, key: 7 }],
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(2)),
            Guarantees::none(),
            ConflictMode::Lww,
        );
        let mut sim = build_sim(cfg, vec![writer, reader], 9);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        assert_eq!(t.len(), 3, "all ops completed");
        let write = t.records().iter().find(|r| r.kind == OpKind::Write).unwrap();
        assert!(write.ok, "acked write must complete once peers confirm");
        for r in t.records().iter().filter(|r| r.kind == OpKind::Read) {
            assert_eq!(
                r.value_read,
                vec![ClientCore::unique_value(1, 1)],
                "replica {} must hold the write before the client ack",
                r.replica
            );
        }
    }

    #[test]
    fn fsynced_counter_state_survives_amnesia() {
        use simnet::FaultSchedule;
        // Durable-CRDT composition: a counter incremented before a crash
        // with amnesia must read back its full value afterwards without
        // any gossip refill (gossip is disabled here on a 1-replica
        // deployment so the only possible source is the fsynced state).
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            replicas: 1,
            eager: false,
            gossip: None,
            mode: ConflictMode::Counter,
            eager_acks: 0,
            durability: DurabilityPolicy::FsyncedState,
        };
        let client = EventualClient::new(
            1,
            vec![
                ScriptOp { gap_us: 1_000, kind: OpKind::Write, key: 3 },
                ScriptOp { gap_us: 2_000_000, kind: OpKind::Read, key: 3 },
            ],
            trace.clone(),
            1,
            TargetPolicy::Sticky(NodeId(0)),
            Guarantees::none(),
            ConflictMode::Counter,
        );
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(4)
                .latency(LatencyModel::Constant(Duration::from_millis(5)))
                .faults(FaultSchedule::none().crash_amnesia(
                    NodeId(0),
                    SimTime::from_millis(500),
                    SimTime::from_millis(900),
                )),
        );
        sim.add_node(Box::new(EventualReplica::new(cfg)));
        sim.add_node(Box::new(client));
        sim.run_until(SimTime::from_secs(4));
        let t = trace.borrow();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).expect("read recorded");
        assert!(read.ok);
        assert_eq!(
            read.value_read,
            vec![ClientCore::unique_value(1, 1)],
            "fsynced counter state must survive the amnesia crash"
        );
    }
}
