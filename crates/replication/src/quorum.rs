//! Dynamo-style quorum replication with tunable N / R / W.
//!
//! Every node is both a storage replica and a coordinator. A client sends
//! each operation to one coordinator, which fans out to all `n` replicas
//! and answers after `w` write acks (resp. `r` read responses), returning
//! the newest version seen. With `r + w > n` read and write quorums
//! intersect and reads are fresh; **partial quorums** (`r + w <= n`) trade
//! freshness for latency — the probabilistic staleness the PBS work
//! quantifies and experiment E1 reproduces.
//!
//! Optional read repair pushes the newest version to stale replicas after
//! every read (ablation in E1).

use crate::common::{ClientCore, IssueOp, OpOutcome, ScriptOp, TimerAction};
use crate::kernel::durability::WalState;
use crate::kernel::ring::Ring;
use clocks::{LamportClock, LamportTimestamp};
use kvstore::{Key, MvStore, Value};
use obs::{Counter, EventKind, QuorumKind};
use simnet::{Actor, Context, Duration, NodeId, OpKind, SharedTrace, SimTime, SpanId, SpanStatus};
use std::collections::BTreeMap;

/// Quorum configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumConfig {
    /// Number of home replicas (the strict preference list).
    pub n: usize,
    /// Read quorum size.
    pub r: usize,
    /// Write quorum size.
    pub w: usize,
    /// Push the newest version to stale replicas after each read.
    pub read_repair: bool,
    /// How long a coordinator waits for a quorum before failing the op.
    pub op_timeout: Duration,
    /// Sloppy quorum: when home replicas don't ack in time, hand the
    /// write to spare nodes (ids `n..n+spares`) which store a *hint* and
    /// deliver it to the real owner when it becomes reachable (Dynamo's
    /// hinted handoff). Write availability goes up; reads can miss hinted
    /// writes until delivery — exactly the tutorial's trade.
    pub sloppy: bool,
    /// Number of spare (hint-holding) nodes in the deployment.
    pub spares: usize,
    /// How often spares retry delivering their hints.
    pub handoff_interval: Duration,
}

impl QuorumConfig {
    /// A strict majority quorum over `n` replicas (`r = w = n/2 + 1`).
    pub fn majority(n: usize) -> Self {
        let q = n / 2 + 1;
        QuorumConfig {
            n,
            r: q,
            w: q,
            read_repair: true,
            op_timeout: Duration::from_millis(250),
            sloppy: false,
            spares: 0,
            handoff_interval: Duration::from_millis(100),
        }
    }

    /// The classic eventually-consistent configuration `R = W = 1`.
    pub fn one_one(n: usize) -> Self {
        QuorumConfig { r: 1, w: 1, ..Self::majority(n) }
    }

    /// A sloppy majority quorum with `spares` hint-holding nodes.
    pub fn sloppy_majority(n: usize, spares: usize) -> Self {
        QuorumConfig { sloppy: true, spares, ..Self::majority(n) }
    }

    /// Total nodes in the deployment (home replicas + spares).
    pub fn total_nodes(&self) -> usize {
        self.n + self.spares
    }

    /// Whether read and write quorums are guaranteed to intersect.
    pub fn intersecting(&self) -> bool {
        self.r + self.w > self.n
    }

    fn validate(&self) {
        assert!(self.n >= 1 && self.r >= 1 && self.w >= 1, "quorum sizes must be positive");
        assert!(self.r <= self.n && self.w <= self.n, "quorum sizes cannot exceed n");
    }
}

/// A replicated version in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireVersion {
    /// Unique write id.
    pub value: u64,
    /// LWW stamp.
    pub ts: LamportTimestamp,
    /// Origin write time (µs).
    pub written_at: u64,
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client read.
    Get {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
    },
    /// Client write.
    Put {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
        /// Unique write id.
        value: u64,
    },
    /// Read response to client.
    GetResp {
        /// Client op id.
        op_id: u64,
        /// Success (quorum reached).
        ok: bool,
        /// Newest version among the quorum, if any.
        version: Option<WireVersion>,
    },
    /// Write response to client.
    PutResp {
        /// Client op id.
        op_id: u64,
        /// Success (quorum reached).
        ok: bool,
        /// Stamp assigned by the coordinator.
        stamp: (u64, u64),
    },
    /// Coordinator → replica read probe.
    RGet {
        /// Coordinator request id.
        req_id: u64,
        /// Key.
        key: Key,
    },
    /// Replica → coordinator read reply.
    RGetResp {
        /// Coordinator request id.
        req_id: u64,
        /// The replica's newest version, if any.
        version: Option<WireVersion>,
    },
    /// Coordinator → replica write.
    RPut {
        /// Coordinator request id.
        req_id: u64,
        /// Key.
        key: Key,
        /// The version to store.
        version: WireVersion,
    },
    /// Replica → coordinator write ack.
    RPutAck {
        /// Coordinator request id.
        req_id: u64,
    },
    /// Read-repair push (no ack needed).
    Repair {
        /// Key.
        key: Key,
        /// The version to store.
        version: WireVersion,
    },
    /// Coordinator → spare: store this write as a hint for `target`.
    HintedPut {
        /// Coordinator request id (counts toward the write quorum).
        req_id: u64,
        /// The home replica that should eventually hold the write.
        target: NodeId,
        /// Key.
        key: Key,
        /// The version.
        version: WireVersion,
    },
    /// Spare → coordinator: hint durably stored.
    HintAck {
        /// Coordinator request id.
        req_id: u64,
    },
    /// Spare → home replica: deliver a hinted write.
    HintDeliver {
        /// Spare-local hint id.
        hint_id: u64,
        /// Key.
        key: Key,
        /// The version.
        version: WireVersion,
    },
    /// Home replica → spare: hint received; the spare can drop it.
    HintDeliverAck {
        /// Spare-local hint id.
        hint_id: u64,
    },
}

impl simnet::MsgMeta for Msg {
    fn variant_name(&self) -> &'static str {
        match self {
            Msg::Get { .. } => "get",
            Msg::Put { .. } => "put",
            Msg::GetResp { .. } => "get_resp",
            Msg::PutResp { .. } => "put_resp",
            Msg::RGet { .. } => "r_get",
            Msg::RGetResp { .. } => "r_get_resp",
            Msg::RPut { .. } => "r_put",
            Msg::RPutAck { .. } => "r_put_ack",
            Msg::Repair { .. } => "repair",
            Msg::HintedPut { .. } => "hinted_put",
            Msg::HintAck { .. } => "hint_ack",
            Msg::HintDeliver { .. } => "hint_deliver",
            Msg::HintDeliverAck { .. } => "hint_deliver_ack",
        }
    }
}

#[derive(Debug)]
enum PendingOp {
    Read {
        client: NodeId,
        op_id: u64,
        key: Key,
        responses: Vec<(NodeId, Option<WireVersion>)>,
        needed: usize,
        done: bool,
        /// Virtual time (µs) the coordinator issued the fan-out, for the
        /// recorded quorum-wait latency.
        issued_at: u64,
        /// The version returned to the client (for async read repair of
        /// responses that arrive after the quorum was reached).
        winner: Option<WireVersion>,
        /// Coordinator span of the fan-out, closed when the op resolves.
        span: SpanId,
    },
    Write {
        client: NodeId,
        op_id: u64,
        key: Key,
        version: WireVersion,
        acks: usize,
        /// Which home replicas have acked (for hint targeting).
        acked_from: Vec<NodeId>,
        needed: usize,
        stamp: LamportTimestamp,
        done: bool,
        hinted: bool,
        /// Virtual time (µs) the coordinator issued the fan-out.
        issued_at: u64,
        /// Coordinator span of the fan-out, closed when the op resolves.
        span: SpanId,
    },
}

impl PendingOp {
    fn span(&self) -> SpanId {
        match self {
            PendingOp::Read { span, .. } | PendingOp::Write { span, .. } => *span,
        }
    }
}

/// Sloppy-quorum sub-timeout tag space.
const TAG_SLOPPY_BASE: u64 = 500_000;
/// Spare hint-retry timer tag.
const TAG_HINT_RETRY: u64 = 7;

const TAG_OPTIMEOUT_BASE: u64 = 1_000_000;

/// A quorum node: storage replica + coordinator.
pub struct QuorumNode {
    cfg: QuorumConfig,
    store: MvStore,
    /// Durable log of every version this replica has adopted. On an
    /// amnesia restart the store is rebuilt by replaying it.
    dur: WalState,
    clock: LamportClock,
    pending: BTreeMap<u64, PendingOp>,
    next_req: u64,
    /// Number of read-repair pushes sent (exported metric).
    pub repairs_sent: u64,
    /// Spare role: undelivered hints (hint id → target, key, version).
    hints: BTreeMap<u64, (NodeId, Key, WireVersion)>,
    next_hint: u64,
    /// Hints successfully handed off (exported metric).
    pub hints_delivered: u64,
    /// Sharded mode: the consistent-hashing ring mapping each key to its
    /// preference list. `None` = classic mode (every node replicates the
    /// whole keyspace, spares are the dedicated tail ids `n..n+spares`).
    ring: Option<Ring>,
    /// Ring mode: whether the lazy hint-retry timer chain is running.
    /// (Classic spares keep a perpetual chain instead.)
    hint_timer_armed: bool,
    /// Reusable buffer for per-operation home-set walks (one ring walk
    /// or classic enumeration per read/write — the coordinator hot path).
    homes_scratch: Vec<NodeId>,
}

impl QuorumNode {
    /// Create a node.
    pub fn new(cfg: QuorumConfig) -> Self {
        cfg.validate();
        QuorumNode {
            cfg,
            store: MvStore::new(),
            dur: WalState::new(),
            clock: LamportClock::new(),
            pending: BTreeMap::new(),
            next_req: 0,
            repairs_sent: 0,
            hints: BTreeMap::new(),
            next_hint: 0,
            hints_delivered: 0,
            ring: None,
            hint_timer_armed: false,
            homes_scratch: Vec::new(),
        }
    }

    /// Create a node in sharded mode: `ring` maps each key to its
    /// preference list, `cfg.n` is the per-key replication factor (must
    /// match the ring's), and `cfg.spares` is the number of preference-
    /// list spares a sloppy write may fall through to. Every node is
    /// replica, coordinator, *and* potential spare for some keys.
    pub fn with_ring(cfg: QuorumConfig, ring: Ring) -> Self {
        assert_eq!(ring.replication(), cfg.n, "ring replication factor must equal the quorum's N");
        QuorumNode { ring: Some(ring), ..QuorumNode::new(cfg) }
    }

    /// The local store (integration tests check convergence).
    pub fn store(&self) -> &MvStore {
        &self.store
    }

    /// The key's home replicas in ascending node-id order: the ring's
    /// preference list in sharded mode, all of `0..n` in classic mode.
    /// Ascending order keeps the fan-out byte-identical to the classic
    /// `peers()` path when the ring degenerates to full replication.
    ///
    /// The home set is computed once per read/write/handoff, so it goes
    /// through a reusable scratch buffer: take it here, hand it back via
    /// [`QuorumNode::restore_homes`] (forgetting to merely costs one
    /// allocation on the next operation).
    fn take_homes(&mut self, key: Key) -> Vec<NodeId> {
        let mut out = std::mem::take(&mut self.homes_scratch);
        out.clear();
        match &self.ring {
            Some(ring) => {
                ring.owners_into(key, &mut out);
                out.sort_unstable_by_key(|n| n.0);
            }
            None => out.extend((0..self.cfg.n as u32).map(NodeId)),
        }
        out
    }

    fn restore_homes(&mut self, buf: Vec<NodeId>) {
        self.homes_scratch = buf;
    }

    fn local_version(&self, key: Key) -> Option<WireVersion> {
        self.store.get(key).map(|v| WireVersion {
            value: v.value.as_u64().unwrap_or(0),
            ts: v.ts,
            written_at: v.written_at,
        })
    }

    fn apply_version(&mut self, ctx: &mut Context<Msg>, key: Key, v: WireVersion) {
        self.clock.observe(v.ts, 0);
        let value = Value::from_u64(v.value);
        // Log only versions the store actually adopts, so replay rebuilds
        // this exact store.
        if self.store.put(key, value.clone(), v.ts, v.written_at) {
            self.dur.log(ctx, key, value, v.ts, v.written_at);
        }
    }

    fn start_read(&mut self, ctx: &mut Context<Msg>, client: NodeId, op_id: u64, key: Key) {
        self.next_req += 1;
        let req_id = self.next_req;
        let me = ctx.self_id();
        // Child of the client's op span: the fan-out sends and the op
        // timeout below all carry this coordinator span.
        let span = ctx.span_open("quorum_read");
        let homes = self.take_homes(key);
        let mut responses = Vec::with_capacity(self.cfg.n);
        if homes.contains(&me) {
            responses.push((me, self.local_version(key)));
        }
        let pending = PendingOp::Read {
            client,
            op_id,
            key,
            responses,
            needed: self.cfg.r,
            done: false,
            winner: None,
            issued_at: ctx.now().as_micros(),
            span,
        };
        self.pending.insert(req_id, pending);
        for peer in homes.iter().copied().filter(|&p| p != me) {
            ctx.send(peer, Msg::RGet { req_id, key });
        }
        self.restore_homes(homes);
        ctx.set_timer(self.cfg.op_timeout, TAG_OPTIMEOUT_BASE + req_id);
        self.try_finish_read(ctx, req_id);
    }

    fn start_write(
        &mut self,
        ctx: &mut Context<Msg>,
        client: NodeId,
        op_id: u64,
        key: Key,
        value: u64,
    ) {
        self.next_req += 1;
        let req_id = self.next_req;
        let me = ctx.self_id();
        let ts = self.clock.tick(me.0 as u64);
        let version = WireVersion { value, ts, written_at: ctx.now().as_micros() };
        let span = ctx.span_open("quorum_write");
        let homes = self.take_homes(key);
        // A coordinator that happens to own the key stores and acks its
        // own copy; a non-owner coordinator (sharded mode with sticky
        // clients) only fans out.
        let is_owner = homes.contains(&me);
        if is_owner {
            self.apply_version(ctx, key, version);
        }
        self.pending.insert(
            req_id,
            PendingOp::Write {
                client,
                op_id,
                key,
                version,
                acks: usize::from(is_owner),
                acked_from: if is_owner { vec![me] } else { Vec::new() },
                needed: self.cfg.w,
                stamp: ts,
                done: false,
                hinted: false,
                issued_at: ctx.now().as_micros(),
                span,
            },
        );
        for peer in homes.iter().copied().filter(|&p| p != me) {
            ctx.send(peer, Msg::RPut { req_id, key, version });
        }
        self.restore_homes(homes);
        ctx.set_timer(self.cfg.op_timeout, TAG_OPTIMEOUT_BASE + req_id);
        if self.cfg.sloppy && self.cfg.spares > 0 {
            // If home acks don't arrive promptly, hand off to spares.
            ctx.set_timer(
                Duration::from_micros(self.cfg.op_timeout.as_micros() / 3),
                TAG_SLOPPY_BASE + req_id,
            );
        }
        self.try_finish_write(ctx, req_id);
    }

    fn try_finish_read(&mut self, ctx: &mut Context<Msg>, req_id: u64) {
        let Some(PendingOp::Read {
            client,
            op_id,
            key,
            responses,
            needed,
            done,
            winner,
            issued_at,
            span,
        }) = self.pending.get_mut(&req_id)
        else {
            return;
        };
        if *done || responses.len() < *needed {
            return;
        }
        *done = true;
        ctx.record(EventKind::QuorumWait {
            node: ctx.self_id().0 as u64,
            kind: QuorumKind::Read,
            waited_us: ctx.now().as_micros().saturating_sub(*issued_at),
            acks: responses.len() as u64,
            needed: *needed as u64,
        });
        let (client, op_id, key, span) = (*client, *op_id, *key, *span);
        let newest = responses.iter().filter_map(|(_, v)| *v).max_by_key(|v| v.ts);
        *winner = newest;
        let stale: Vec<NodeId> = match newest {
            Some(best) => responses
                .iter()
                .filter(|(_, v)| v.map(|x| x.ts < best.ts).unwrap_or(true))
                .map(|(n, _)| *n)
                .collect(),
            None => Vec::new(),
        };
        ctx.send(client, Msg::GetResp { op_id, ok: true, version: newest });
        if self.cfg.read_repair {
            if let Some(best) = newest {
                let me = ctx.self_id();
                for node in stale {
                    self.repairs_sent += 1;
                    ctx.recorder().count_node(me.0 as u64, Counter::ReadRepairs, 1);
                    if node == me {
                        self.apply_version(ctx, key, best);
                    } else {
                        ctx.send(node, Msg::Repair { key, version: best });
                    }
                }
            }
        }
        // Closed after the synchronous read-repair pushes so those hops
        // belong to the coordinator span too.
        ctx.span_close(span, SpanStatus::Ok);
    }

    fn try_finish_write(&mut self, ctx: &mut Context<Msg>, req_id: u64) {
        let Some(PendingOp::Write {
            client,
            op_id,
            acks,
            needed,
            stamp,
            done,
            issued_at,
            span,
            ..
        }) = self.pending.get_mut(&req_id)
        else {
            return;
        };
        if *done || *acks < *needed {
            return;
        }
        *done = true;
        ctx.record(EventKind::QuorumWait {
            node: ctx.self_id().0 as u64,
            kind: QuorumKind::Write,
            waited_us: ctx.now().as_micros().saturating_sub(*issued_at),
            acks: *acks as u64,
            needed: *needed as u64,
        });
        let (client, op_id, stamp, span) = (*client, *op_id, *stamp, *span);
        ctx.send(client, Msg::PutResp { op_id, ok: true, stamp: (stamp.counter, stamp.actor) });
        ctx.span_close(span, SpanStatus::Ok);
    }

    fn fail_pending(&mut self, ctx: &mut Context<Msg>, req_id: u64) {
        match self.pending.remove(&req_id) {
            Some(PendingOp::Read { client, op_id, done: false, span, .. }) => {
                ctx.span_close(span, SpanStatus::Failed);
                ctx.send(client, Msg::GetResp { op_id, ok: false, version: None });
            }
            Some(PendingOp::Write { client, op_id, done: false, span, .. }) => {
                ctx.span_close(span, SpanStatus::Failed);
                ctx.send(client, Msg::PutResp { op_id, ok: false, stamp: (0, 0) });
            }
            _ => {}
        }
    }
}

impl QuorumNode {
    /// Sloppy handoff: the sub-timeout fired and the write still lacks a
    /// quorum — send the version to spares on behalf of the silent home
    /// replicas. Spare acks count toward W.
    fn sloppy_handoff(&mut self, ctx: &mut Context<Msg>, req_id: u64) {
        let Some(PendingOp::Write { key, version, acks, acked_from, needed, done, hinted, .. }) =
            self.pending.get_mut(&req_id)
        else {
            return;
        };
        if *done || *hinted || *acks >= *needed {
            return;
        }
        *hinted = true;
        let (key, version) = (*key, *version);
        // Borrow the entry's ack list while the homes walk needs `&mut
        // self`, then hand it back — the handoff path used to clone it.
        let acked = std::mem::take(acked_from);
        let mut missing = self.take_homes(key);
        missing.retain(|nid| !acked.contains(nid));
        if let Some(PendingOp::Write { acked_from, .. }) = self.pending.get_mut(&req_id) {
            *acked_from = acked;
        }
        let spares: Vec<NodeId> = match &self.ring {
            // Sharded mode: the next distinct nodes on the key's walk.
            Some(ring) => ring.spares(key, self.cfg.spares),
            // Classic mode: the dedicated spare tail.
            None => (self.cfg.n as u32..self.cfg.total_nodes() as u32).map(NodeId).collect(),
        };
        if !spares.is_empty() {
            for (i, &target) in missing.iter().enumerate() {
                let spare = spares[i % spares.len()];
                ctx.send(spare, Msg::HintedPut { req_id, target, key, version });
            }
        }
        self.restore_homes(missing);
    }
}

impl Actor<Msg> for QuorumNode {
    fn role(&self) -> &'static str {
        "replica"
    }

    fn key_versions(&self) -> Vec<(u64, u64)> {
        // Unique write ids identify versions; divergence probes count
        // distinct ids per key across replicas.
        self.store.scan(..).map(|(k, v)| (k, v.value.as_u64().unwrap_or(0))).collect()
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        if self.ring.is_none() && ctx.self_id().index() >= self.cfg.n {
            // Classic spare role: periodically retry hint delivery. In
            // ring mode any node can hold hints, so the retry chain is
            // armed lazily on the first hint instead.
            ctx.set_timer(self.cfg.handoff_interval, TAG_HINT_RETRY);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>, amnesia: bool) {
        let me = ctx.self_id();
        if amnesia {
            // Coordinator bookkeeping and spare-held hints are volatile:
            // in-flight ops are lost (their clients time out) and hinted
            // writes die with the spare — the durability edge sloppy
            // quorums trade away. The replica's own data is durable:
            // rebuild the store and clock by replaying the WAL. The
            // req/hint id counters survive (modeled as derived from a
            // durable restart epoch) so stale pre-crash acks can never
            // collide with post-restart request ids.
            for (_, op) in std::mem::take(&mut self.pending) {
                // The fan-out died with the coordinator; its span is
                // abandoned now rather than lingering to the horizon.
                ctx.span_close(op.span(), SpanStatus::Abandoned);
            }
            if !self.hints.is_empty() {
                ctx.recorder().count_node(
                    me.0 as u64,
                    Counter::HintsDropped,
                    self.hints.len() as u64,
                );
            }
            self.hints.clear();
            self.store = self.dur.replay(ctx, None, Some(&mut self.clock));
        }
        // A crash killed every pending timer, so the hint-retry chain
        // must be re-armed in both recovery modes.
        if self.ring.is_none() {
            if me.index() >= self.cfg.n {
                ctx.set_timer(self.cfg.handoff_interval, TAG_HINT_RETRY);
            }
        } else {
            self.hint_timer_armed = !self.hints.is_empty();
            if self.hint_timer_armed {
                ctx.set_timer(self.cfg.handoff_interval, TAG_HINT_RETRY);
            }
        }
    }

    fn on_membership(&mut self, ctx: &mut Context<Msg>, node: NodeId, join: bool) {
        // Classic mode has no ring to rebalance; membership events are
        // meaningless there.
        let Some(ring) = self.ring.as_mut() else { return };
        let old = ring.clone();
        let changed = if join { ring.join(node) } else { ring.leave(node) };
        if !changed {
            return;
        }
        let new_ring = ring.clone();
        let me = ctx.self_id();
        // Deterministic rebalancing: for each locally stored key, one
        // designated sender — the lowest-id previous owner still in the
        // ring (falling back to the lowest-id previous owner, which for a
        // leave is the departing node itself: still a live actor, merely
        // retiring) — pushes the version to every owner the key *gained*.
        // Repair is idempotent LWW apply, so duplicates and reorderings
        // are harmless; under a partition the push is simply lost, and
        // read repair picks up the slack after the heal.
        let mut moves: Vec<(Key, WireVersion, NodeId)> = Vec::new();
        let mut rebalanced = 0u64;
        for (key, v) in self.store.scan(..) {
            let old_owners = old.owners(key);
            let sender = old_owners
                .iter()
                .copied()
                .filter(|o| new_ring.contains(*o))
                .min_by_key(|o| o.0)
                .or_else(|| old_owners.iter().copied().min_by_key(|o| o.0));
            if sender != Some(me) {
                continue;
            }
            let gained: Vec<NodeId> =
                new_ring.owners(key).into_iter().filter(|o| !old_owners.contains(o)).collect();
            if gained.is_empty() {
                continue;
            }
            rebalanced += 1;
            let version = WireVersion {
                value: v.value.as_u64().unwrap_or(0),
                ts: v.ts,
                written_at: v.written_at,
            };
            moves.extend(gained.into_iter().map(|target| (key, version, target)));
        }
        if rebalanced > 0 {
            ctx.recorder().count_node(me.0 as u64, Counter::RebalancedKeys, rebalanced);
        }
        for (key, version, target) in moves {
            ctx.send(target, Msg::Repair { key, version });
        }
    }

    fn on_shutdown(&mut self, ctx: &mut Context<Msg>) {
        // Hints still parked here at the end of the run never reached
        // their home replica — account for them so the conservation
        // identity hints_stored == hints_drained + hints_dropped holds.
        if !self.hints.is_empty() {
            ctx.recorder().count_node(
                ctx.self_id().0 as u64,
                Counter::HintsDropped,
                self.hints.len() as u64,
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if tag == TAG_HINT_RETRY {
            for (&hint_id, &(target, key, version)) in &self.hints {
                ctx.send(target, Msg::HintDeliver { hint_id, key, version });
            }
            if self.ring.is_none() {
                // Classic spare: perpetual retry chain.
                ctx.set_timer(self.cfg.handoff_interval, TAG_HINT_RETRY);
            } else if !self.hints.is_empty() {
                ctx.set_timer(self.cfg.handoff_interval, TAG_HINT_RETRY);
            } else {
                // Ring mode: let the chain die once every hint drained;
                // the next HintedPut re-arms it.
                self.hint_timer_armed = false;
            }
        } else if (TAG_SLOPPY_BASE..TAG_OPTIMEOUT_BASE).contains(&tag) {
            self.sloppy_handoff(ctx, tag - TAG_SLOPPY_BASE);
        } else if tag >= TAG_OPTIMEOUT_BASE {
            self.fail_pending(ctx, tag - TAG_OPTIMEOUT_BASE);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Get { op_id, key } => self.start_read(ctx, from, op_id, key),
            Msg::Put { op_id, key, value } => self.start_write(ctx, from, op_id, key, value),
            Msg::RGet { req_id, key } => {
                let span = ctx.span_open("replica_read");
                let version = self.local_version(key);
                ctx.send(from, Msg::RGetResp { req_id, version });
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::RGetResp { req_id, version } => {
                let mut late_repair: Option<(Key, WireVersion, NodeId)> = None;
                if let Some(PendingOp::Read { responses, done, winner, key, .. }) =
                    self.pending.get_mut(&req_id)
                {
                    responses.push((from, version));
                    if *done && self.cfg.read_repair {
                        // Async read repair: a response arriving after the
                        // quorum still tells us whether that replica lags.
                        match (*winner, version) {
                            (Some(best), v) if v.map(|x| x.ts < best.ts).unwrap_or(true) => {
                                late_repair = Some((*key, best, from));
                            }
                            (_, Some(v)) => {
                                // The late responder is *newer*: adopt it
                                // locally so future reads here are fresher.
                                // Only if we are a home replica for the key —
                                // a ring coordinator outside the preference
                                // list must not grow a stray copy.
                                let key = *key;
                                let homes = self.take_homes(key);
                                let is_home = homes.contains(&ctx.self_id());
                                self.restore_homes(homes);
                                if is_home {
                                    self.apply_version(ctx, key, v);
                                }
                            }
                            _ => {}
                        }
                    }
                }
                if let Some((key, version, node)) = late_repair {
                    self.repairs_sent += 1;
                    ctx.recorder().count_node(ctx.self_id().0 as u64, Counter::ReadRepairs, 1);
                    ctx.send(node, Msg::Repair { key, version });
                }
                self.try_finish_read(ctx, req_id);
            }
            Msg::RPut { req_id, key, version } => {
                let span = ctx.span_open("replica_write");
                self.apply_version(ctx, key, version);
                ctx.send(from, Msg::RPutAck { req_id });
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::RPutAck { req_id } => {
                if let Some(PendingOp::Write { acks, acked_from, .. }) =
                    self.pending.get_mut(&req_id)
                {
                    *acks += 1;
                    acked_from.push(from);
                    self.try_finish_write(ctx, req_id);
                }
            }
            Msg::HintedPut { req_id, target, key, version } => {
                // Spare role: store the hint, ack toward the write quorum.
                let span = ctx.span_open("hint_store");
                self.next_hint += 1;
                self.hints.insert(self.next_hint, (target, key, version));
                ctx.recorder().count_node(ctx.self_id().0 as u64, Counter::HintsStored, 1);
                if self.ring.is_some() && !self.hint_timer_armed {
                    self.hint_timer_armed = true;
                    ctx.set_timer(self.cfg.handoff_interval, TAG_HINT_RETRY);
                }
                ctx.send(from, Msg::HintAck { req_id });
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::HintAck { req_id } => {
                if let Some(PendingOp::Write { acks, .. }) = self.pending.get_mut(&req_id) {
                    *acks += 1;
                    self.try_finish_write(ctx, req_id);
                }
            }
            Msg::HintDeliver { hint_id, key, version } => {
                self.apply_version(ctx, key, version);
                ctx.send(from, Msg::HintDeliverAck { hint_id });
            }
            Msg::HintDeliverAck { hint_id } => {
                if self.hints.remove(&hint_id).is_some() {
                    self.hints_delivered += 1;
                    ctx.recorder().count_node(ctx.self_id().0 as u64, Counter::HintsDrained, 1);
                }
            }
            Msg::Repair { key, version } => {
                let span = ctx.span_open("repair_apply");
                self.apply_version(ctx, key, version);
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::GetResp { .. } | Msg::PutResp { .. } => {}
        }
    }
}

/// A scripted client for the quorum protocol.
pub struct QuorumClient {
    core: ClientCore,
    n: usize,
    /// `None` = random coordinator per op; `Some(id)` = sticky.
    home: Option<NodeId>,
}

impl QuorumClient {
    /// Create a client session.
    pub fn new(
        session: u64,
        script: Vec<ScriptOp>,
        trace: SharedTrace,
        n: usize,
        home: Option<NodeId>,
    ) -> Self {
        QuorumClient {
            core: ClientCore::new(session, script, trace, Duration::from_millis(800)),
            n,
            home,
        }
    }

    fn target(&self, ctx: &mut Context<Msg>) -> NodeId {
        self.home.unwrap_or_else(|| NodeId(ctx.rng().index(self.n) as u32))
    }

    fn send_op(&mut self, ctx: &mut Context<Msg>, op: IssueOp, target: NodeId) {
        let msg = match op.kind {
            OpKind::Read => Msg::Get { op_id: op.op_id, key: op.key },
            OpKind::Write => Msg::Put {
                op_id: op.op_id,
                key: op.key,
                value: op.value.expect("write without value"),
            },
        };
        ctx.send(target, msg);
    }
}

impl Actor<Msg> for QuorumClient {
    fn role(&self) -> &'static str {
        "client"
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.core.start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        let target = self.target(ctx);
        match self.core.handle_timer(ctx, tag, target) {
            TimerAction::Issue(op) => self.send_op(ctx, op, target),
            TimerAction::TimedOut(_) | TimerAction::None => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::GetResp { op_id, ok, version } => {
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome {
                        ok,
                        values: version.map(|v| v.value).into_iter().collect(),
                        stamp: version.map(|v| (v.ts.counter, v.ts.actor)),
                        version_ts: version.map(|v| SimTime::from_micros(v.written_at)),
                    },
                );
            }
            Msg::PutResp { op_id, ok, stamp } => {
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome { ok, values: vec![], stamp: Some(stamp), version_ts: None },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{optrace, FaultSchedule, LatencyModel, Sim, SimConfig};

    fn build(
        cfg: QuorumConfig,
        clients: Vec<QuorumClient>,
        seed: u64,
        faults: FaultSchedule,
    ) -> Sim<Msg> {
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(seed)
                .latency(LatencyModel::Constant(Duration::from_millis(5)))
                .faults(faults),
        );
        for _ in 0..cfg.total_nodes() {
            sim.add_node(Box::new(QuorumNode::new(cfg)));
        }
        for c in clients {
            sim.add_node(Box::new(c));
        }
        sim
    }

    fn script(ops: &[(OpKind, Key)]) -> Vec<ScriptOp> {
        ops.iter().map(|&(kind, key)| ScriptOp { gap_us: 2_000, kind, key }).collect()
    }

    #[test]
    fn majority_quorum_read_sees_prior_write() {
        let trace = optrace::shared_trace();
        let cfg = QuorumConfig::majority(3);
        assert!(cfg.intersecting());
        let writer =
            QuorumClient::new(1, script(&[(OpKind::Write, 9)]), trace.clone(), 3, Some(NodeId(0)));
        let reader = QuorumClient::new(
            2,
            vec![ScriptOp { gap_us: 100_000, kind: OpKind::Read, key: 9 }],
            trace.clone(),
            3,
            Some(NodeId(1)),
        );
        let mut sim = build(cfg, vec![writer, reader], 1, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        assert!(read.ok);
        assert_eq!(read.value_read, vec![ClientCore::unique_value(1, 1)]);
    }

    #[test]
    fn r1_partial_quorum_admits_stale_read_after_ack() {
        // PBS in miniature: with R=W=1, there exists a schedule (under
        // jittery latency) where a read *invoked after the write was
        // acknowledged* still misses the write. With constant latency no
        // such window exists (ack and fan-out travel equally fast), so we
        // search seeds under jitter for a deterministic witness.
        let mut witness = None;
        for seed in 0..100u64 {
            let trace = optrace::shared_trace();
            let cfg = QuorumConfig {
                read_repair: false,
                op_timeout: Duration::from_millis(250),
                ..QuorumConfig::one_one(3)
            };
            let writer = QuorumClient::new(
                1,
                script(&[(OpKind::Write, 9)]),
                trace.clone(),
                3,
                Some(NodeId(0)),
            );
            // Probe every 2ms: any probe invoked after the write ack that
            // still sees nothing is a stale-after-ack witness.
            let reader = QuorumClient::new(
                2,
                (0..40).map(|_| ScriptOp { gap_us: 2_000, kind: OpKind::Read, key: 9 }).collect(),
                trace.clone(),
                3,
                Some(NodeId(1)),
            );
            let mut sim =
                Sim::new(SimConfig::default().seed(seed).latency(LatencyModel::Uniform {
                    min: Duration::from_millis(1),
                    max: Duration::from_millis(30),
                }));
            for _ in 0..cfg.n {
                sim.add_node(Box::new(QuorumNode::new(cfg)));
            }
            sim.add_node(Box::new(writer));
            sim.add_node(Box::new(reader));
            sim.run_until(SimTime::from_secs(1));
            let t = trace.borrow();
            let write = t.records().iter().find(|r| r.kind == OpKind::Write).unwrap();
            let stale_after_ack = t.records().iter().any(|r| {
                r.kind == OpKind::Read
                    && r.ok
                    && r.invoked > write.completed
                    && r.value_read.is_empty()
            });
            if write.ok && stale_after_ack {
                witness = Some(seed);
                break;
            }
        }
        assert!(
            witness.is_some(),
            "no stale-after-ack schedule found in 100 seeds — partial quorums should admit one"
        );
    }

    #[test]
    fn read_repair_spreads_version_to_all_replicas() {
        let trace = optrace::shared_trace();
        let cfg = QuorumConfig { read_repair: true, ..QuorumConfig::majority(3) };
        let writer =
            QuorumClient::new(1, script(&[(OpKind::Write, 3)]), trace.clone(), 3, Some(NodeId(0)));
        // One repaired read, then an R=1-style late probe at each
        // coordinator: after repair every replica must serve the value.
        let reader = QuorumClient::new(
            2,
            vec![ScriptOp { gap_us: 100_000, kind: OpKind::Read, key: 3 }],
            trace.clone(),
            3,
            Some(NodeId(1)),
        );
        let mut probes = Vec::new();
        for (s, node) in [(3u64, 0u32), (4, 1), (5, 2)] {
            probes.push(QuorumClient::new(
                s,
                vec![ScriptOp { gap_us: 400_000, kind: OpKind::Read, key: 3 }],
                trace.clone(),
                3,
                Some(NodeId(node)),
            ));
        }
        let mut clients = vec![writer, reader];
        clients.extend(probes);
        let mut sim = build(QuorumConfig { r: 1, ..cfg }, clients, 3, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        for r in t.records().iter().filter(|r| r.session >= 3) {
            assert_eq!(
                r.value_read,
                vec![ClientCore::unique_value(1, 1)],
                "replica behind coordinator for session {} still stale",
                r.session
            );
        }
    }

    #[test]
    fn minority_partition_blocks_majority_quorum_ops() {
        let trace = optrace::shared_trace();
        let cfg = QuorumConfig::majority(3);
        // Side A holds node 0 *and* its client (node 3); the fine client
        // (node 4) stays with the majority.
        let faults = FaultSchedule::none().partition(
            vec![NodeId(0), NodeId(3)],
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let blocked =
            QuorumClient::new(1, script(&[(OpKind::Write, 1)]), trace.clone(), 3, Some(NodeId(0)));
        let fine =
            QuorumClient::new(2, script(&[(OpKind::Write, 2)]), trace.clone(), 3, Some(NodeId(1)));
        let mut sim = build(cfg, vec![blocked, fine], 4, faults);
        sim.run_until(SimTime::from_secs(5));
        let t = trace.borrow();
        let by_session = |s: u64| t.records().iter().find(|r| r.session == s).unwrap();
        assert!(!by_session(1).ok, "coordinator in minority partition must fail");
        assert!(by_session(2).ok, "majority side keeps working");
    }

    #[test]
    fn coordinator_timeout_produces_client_failure_quickly() {
        let trace = optrace::shared_trace();
        let cfg =
            QuorumConfig { op_timeout: Duration::from_millis(100), ..QuorumConfig::majority(3) };
        // The client (node 3) sits on node 0's side of the cut so its
        // request reaches the coordinator, whose op timeout then fires.
        let faults = FaultSchedule::none().partition(
            vec![NodeId(0), NodeId(3)],
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let c =
            QuorumClient::new(1, script(&[(OpKind::Read, 1)]), trace.clone(), 3, Some(NodeId(0)));
        let mut sim = build(cfg, vec![c], 5, faults);
        sim.run_until(SimTime::from_secs(5));
        let t = trace.borrow();
        let r = &t.records()[0];
        assert!(!r.ok);
        assert!(r.latency() < Duration::from_millis(300), "latency {:?}", r.latency());
    }

    #[test]
    fn r1w1_is_available_in_both_partition_sides() {
        // CAP in one test: R=W=1 keeps serving on both sides of a cut.
        let trace = optrace::shared_trace();
        let cfg = QuorumConfig::one_one(3);
        // The minority client (node 3) is co-located with node 0.
        let faults = FaultSchedule::none().partition(
            vec![NodeId(0), NodeId(3)],
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let minority =
            QuorumClient::new(1, script(&[(OpKind::Write, 1)]), trace.clone(), 3, Some(NodeId(0)));
        let majority =
            QuorumClient::new(2, script(&[(OpKind::Write, 1)]), trace.clone(), 3, Some(NodeId(1)));
        let mut sim = build(cfg, vec![minority, majority], 6, faults);
        sim.run_until(SimTime::from_secs(5));
        let t = trace.borrow();
        assert!(t.records().iter().all(|r| r.ok), "R=W=1 stays available everywhere");
    }

    #[test]
    fn sloppy_quorum_writes_survive_home_replica_outage() {
        // Home replicas 1 and 2 are cut off; a strict majority write via
        // coordinator 0 must fail, while a sloppy one succeeds through
        // hinted handoff to the spare (node 3).
        let run = |sloppy: bool| {
            let trace = optrace::shared_trace();
            let cfg = if sloppy {
                QuorumConfig::sloppy_majority(3, 1)
            } else {
                QuorumConfig::majority(3)
            };
            let total = cfg.total_nodes();
            // Side A: coordinator 0, the spare (if any), and the client.
            let mut side_a = vec![NodeId(0), NodeId(total as u32)];
            if sloppy {
                side_a.push(NodeId(3));
            }
            let faults =
                FaultSchedule::none().partition(side_a, SimTime::ZERO, SimTime::from_secs(5));
            let client = QuorumClient::new(
                1,
                script(&[(OpKind::Write, 9)]),
                trace.clone(),
                3,
                Some(NodeId(0)),
            );
            let mut sim = build(cfg, vec![client], 21, faults);
            sim.run_until(SimTime::from_secs(3));
            let t = trace.borrow();
            t.records()[0].ok
        };
        assert!(!run(false), "strict majority must fail with two homes down");
        assert!(run(true), "sloppy quorum must succeed via hinted handoff");
    }

    #[test]
    fn hints_deliver_after_partition_heals() {
        // Write lands via hints during the outage; after the heal the
        // spare hands the version to the real owners, and an R=1 read at
        // node 1 sees it.
        let trace = optrace::shared_trace();
        let cfg = QuorumConfig { r: 1, w: 2, ..QuorumConfig::sloppy_majority(3, 1) };
        let total = cfg.total_nodes();
        let faults = FaultSchedule::none().partition(
            vec![NodeId(0), NodeId(3), NodeId(total as u32)],
            SimTime::ZERO,
            SimTime::from_secs(2),
        );
        let writer =
            QuorumClient::new(1, script(&[(OpKind::Write, 9)]), trace.clone(), 3, Some(NodeId(0)));
        // Read at node 1, 4 seconds in (partition healed at 2s, handoff
        // retries every 100ms).
        let reader = QuorumClient::new(
            2,
            vec![ScriptOp { gap_us: 4_000_000, kind: OpKind::Read, key: 9 }],
            trace.clone(),
            3,
            Some(NodeId(1)),
        );
        let mut sim = build(cfg, vec![writer, reader], 22, faults);
        sim.run_until(SimTime::from_secs(6));
        let t = trace.borrow();
        let write = t.records().iter().find(|r| r.kind == OpKind::Write).unwrap();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        assert!(write.ok, "hinted write succeeds during the outage");
        assert_eq!(
            read.value_read,
            vec![ClientCore::unique_value(1, 1)],
            "hint must be delivered to the home replica after the heal"
        );
    }

    #[test]
    #[should_panic(expected = "cannot exceed n")]
    fn invalid_quorum_config_panics() {
        QuorumNode::new(QuorumConfig { r: 4, w: 1, ..QuorumConfig::majority(3) });
    }
}
