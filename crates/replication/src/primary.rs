//! Primary-copy replication: one master, log-shipping backups.
//!
//! All writes execute at the primary, which appends to its write-ahead log
//! and replicates the log suffix to backups. Two propagation modes:
//!
//! * [`PrimaryMode::Sync`] — the primary acknowledges a write only after
//!   `acks_required` backups have durably applied it (the classic
//!   synchronous-replication latency cost measured in E10). If the
//!   backups are unreachable, writes *block and fail* — the CP corner of
//!   CAP (E4).
//! * [`PrimaryMode::Async`] — the primary acknowledges immediately and
//!   ships the log every `ship_interval`; backups lag by up to one
//!   interval plus network delay — the staleness window E9 sweeps.
//!
//! Reads are served locally by *any* replica (that is the whole point of
//! read scale-out), so reads at backups can be stale; bounded-staleness
//! read policies reject a backup whose applied timestamp is too old
//! (enforced client-side via the returned stamp, measured in E9).
//!
//! **Failover** is optional ([`PrimaryConfig::failover`]): when enabled,
//! backups track primary heartbeats and run a round-robin view change
//! (view `v` is led by node `v mod n`, Viewstamped-Replication style);
//! the successor promotes itself after a silence proportional to its
//! distance from the current view, installs snapshots into stragglers,
//! and resumes the sequence space from its applied position. With
//! failover *off* (the default), a crashed primary means unavailable
//! writes — the window E4 measures; the ablation is the point.
//! Async-mode failover can lose the un-replicated log tail, exactly as
//! real asynchronous replication does.

use crate::common::{ClientCore, OpOutcome, ScriptOp, TimerAction};
use crate::kernel::durability::WalState;
use crate::kernel::propagation::PeerCache;
use clocks::LamportTimestamp;
use kvstore::{Key, LogRecord, MvStore, Value};
use obs::{EventKind, QuorumKind};
use simnet::{Actor, Context, Duration, NodeId, OpKind, SharedTrace, SimTime, SpanId, SpanStatus};
use std::collections::BTreeMap;

/// Propagation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimaryMode {
    /// Ack after `acks_required` backups applied the write.
    Sync {
        /// Number of backup acks required before the client ack.
        acks_required: usize,
    },
    /// Ack immediately; ship the log every `ship_interval`.
    Async {
        /// Log-shipping interval (the replication-lag knob).
        ship_interval: Duration,
    },
}

/// View-change (failover) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Primary heartbeat interval.
    pub heartbeat: Duration,
    /// Base silence before the next-in-line backup promotes itself.
    pub timeout: Duration,
}

/// Deployment configuration.
#[derive(Debug, Clone, Copy)]
pub struct PrimaryConfig {
    /// Number of replicas; node 0 is the initial primary (view 0).
    pub replicas: usize,
    /// Propagation mode.
    pub mode: PrimaryMode,
    /// Primary-side wait before failing a sync write.
    pub write_timeout: Duration,
    /// View-change failover; `None` = static primary (writes fail while
    /// the primary is down).
    pub failover: Option<FailoverConfig>,
}

impl PrimaryConfig {
    /// Synchronous replication to all backups.
    pub fn sync_all(replicas: usize) -> Self {
        PrimaryConfig {
            replicas,
            mode: PrimaryMode::Sync { acks_required: replicas.saturating_sub(1) },
            write_timeout: Duration::from_millis(250),
            failover: None,
        }
    }

    /// Enable round-robin view-change failover with default timings.
    pub fn with_failover(mut self) -> Self {
        self.failover = Some(FailoverConfig {
            heartbeat: Duration::from_millis(25),
            timeout: Duration::from_millis(150),
        });
        self
    }

    /// Asynchronous log shipping with the given lag.
    pub fn async_lag(replicas: usize, ship_interval: Duration) -> Self {
        PrimaryConfig {
            replicas,
            mode: PrimaryMode::Async { ship_interval },
            write_timeout: Duration::from_millis(250),
            failover: None,
        }
    }

    /// The initial primary's node id (view 0 → node 0).
    pub fn primary(&self) -> NodeId {
        NodeId(0)
    }

    /// The primary of a given view (round-robin).
    pub fn primary_of_view(&self, view: u64) -> NodeId {
        NodeId((view % self.replicas as u64) as u32)
    }
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client write (sent to any replica; forwarded to the primary).
    Put {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
        /// Unique write id.
        value: u64,
        /// Where the ack should go (set on forward).
        reply_to: NodeId,
    },
    /// Write ack.
    PutResp {
        /// Client op id.
        op_id: u64,
        /// Success.
        ok: bool,
        /// Log-sequence stamp `(seq, 0)`.
        stamp: (u64, u64),
    },
    /// Client read (served locally by the receiving replica).
    Get {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
    },
    /// Read response.
    GetResp {
        /// Client op id.
        op_id: u64,
        /// Value, if present.
        value: Option<u64>,
        /// Stamp of the version returned.
        stamp: Option<(u64, u64)>,
        /// Origin write time (µs).
        version_ts: Option<u64>,
        /// The replica's applied log position (bounded-staleness signal).
        applied_seq: u64,
    },
    /// Primary → backup: log suffix starting after the backup's ack point.
    Append {
        /// The sender's view; backups ignore appends from stale views
        /// (a crashed ex-primary that recovered may still ship its old
        /// log until a higher-view heartbeat demotes it).
        view: u64,
        /// Records in sequence order.
        records: Vec<LogRecord>,
    },
    /// Backup → primary: applied through this sequence number.
    AppendAck {
        /// Highest contiguously applied sequence.
        seq: u64,
    },
    /// Primary liveness + view announcement (failover mode).
    Heartbeat {
        /// The sender's view.
        view: u64,
    },
    /// Primary → straggler backup: full-state catch-up when the log
    /// suffix it needs was discarded (promotion resets the log).
    Snapshot {
        /// The sender's view; stale-view snapshots are ignored.
        view: u64,
        /// Log position the snapshot covers.
        through: u64,
        /// Latest version per key: `(key, value, seq-stamp, written_at)`.
        items: Vec<(Key, u64, u64, u64)>,
    },
}

impl simnet::MsgMeta for Msg {
    fn variant_name(&self) -> &'static str {
        match self {
            Msg::Put { .. } => "put",
            Msg::PutResp { .. } => "put_resp",
            Msg::Get { .. } => "get",
            Msg::GetResp { .. } => "get_resp",
            Msg::Append { .. } => "append",
            Msg::AppendAck { .. } => "append_ack",
            Msg::Heartbeat { .. } => "heartbeat",
            Msg::Snapshot { .. } => "snapshot",
        }
    }
}

/// A sync write waiting for backup acks at the primary.
#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    client: NodeId,
    op_id: u64,
    done: bool,
    /// Virtual time (µs) the primary appended the write.
    issued_at: u64,
    /// Primary-side span of the write, closed when the op resolves.
    span: SpanId,
}

const TAG_SHIP: u64 = 1;
const TAG_HEARTBEAT: u64 = 2;
const TAG_FAILOVER_CHECK: u64 = 3;
const TAG_WRITE_TIMEOUT_BASE: u64 = 1_000;

/// A primary-copy replica. Node 0 acts as primary; the rest are backups.
pub struct PrimaryReplica {
    cfg: PrimaryConfig,
    store: MvStore,
    /// Checkpointed log: `dur.wal` is truncated at each checkpoint and
    /// recovery replays the tail over the snapshot.
    dur: WalState,
    /// Backup: highest contiguously applied seq.
    applied_seq: u64,
    /// Primary: per-backup acked seq.
    acked: BTreeMap<NodeId, u64>,
    /// Primary: pending sync writes by seq.
    pending: BTreeMap<u64, PendingWrite>,
    /// Backup: out-of-order buffer.
    reorder: BTreeMap<u64, LogRecord>,
    /// Modeled on-disk checkpoint: set whenever the log is truncated
    /// (snapshot install, promotion/demotion resets), so an amnesia
    /// restart can rebuild the store as `checkpoint + WAL tail`.
    durable_snapshot: Option<MvStore>,
    /// Current view (failover mode; 0 = the static deployment view).
    /// Modeled durable, Viewstamped-Replication style: a recovering node
    /// must not regress to an older view.
    view: u64,
    /// When the current primary was last heard from (µs).
    last_heartbeat_us: u64,
    /// Count of view changes this node performed (exported metric).
    pub promotions: u64,
    /// Reusable fan-out peer list (membership is fixed for a run).
    peer_cache: PeerCache,
    /// Primary: reusable scratch for the ack-driven quorum sweep.
    ready_scratch: Vec<u64>,
}

impl PrimaryReplica {
    /// Create a replica.
    pub fn new(cfg: PrimaryConfig) -> Self {
        PrimaryReplica {
            cfg,
            store: MvStore::new(),
            dur: WalState::new(),
            applied_seq: 0,
            acked: BTreeMap::new(),
            pending: BTreeMap::new(),
            reorder: BTreeMap::new(),
            durable_snapshot: None,
            view: 0,
            last_heartbeat_us: 0,
            promotions: 0,
            peer_cache: PeerCache::default(),
            ready_scratch: Vec::new(),
        }
    }

    /// The primary this replica currently believes in.
    pub fn current_primary(&self) -> NodeId {
        self.cfg.primary_of_view(self.view)
    }

    /// The local store (tests check staleness/convergence).
    pub fn store(&self) -> &MvStore {
        &self.store
    }

    /// Highest contiguously applied log sequence.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    fn ship_to(&mut self, ctx: &mut Context<Msg>, backup: NodeId) {
        let from = self.acked.get(&backup).copied().unwrap_or(0);
        if from < self.dur.wal.truncated_through() {
            // The suffix the backup needs predates this primary's log
            // (it was promoted with `reset_to`): install a snapshot.
            let items: Vec<(Key, u64, u64, u64)> = self
                .store
                .scan(..)
                .map(|(k, v)| (k, v.value.as_u64().unwrap_or(0), v.ts.counter, v.written_at))
                .collect();
            ctx.send(
                backup,
                Msg::Snapshot { view: self.view, through: self.dur.wal.truncated_through(), items },
            );
        }
        let records = self.dur.wal.tail(from.max(self.dur.wal.truncated_through())).to_vec();
        if !records.is_empty() {
            ctx.send(backup, Msg::Append { view: self.view, records });
        }
    }

    /// Truncate the log at the applied position, first checkpointing the
    /// store so an amnesia restart can still rebuild everything the
    /// discarded prefix contained.
    fn checkpoint_and_reset_log(&mut self) {
        self.durable_snapshot = Some(self.store.clone());
        self.dur.wal.reset_to(self.applied_seq);
    }

    fn is_primary(&self, me: NodeId) -> bool {
        me == self.current_primary()
    }

    /// Promote this backup to primary of the smallest view it leads.
    fn promote(&mut self, ctx: &mut Context<Msg>) {
        let me = ctx.self_id();
        let n = self.cfg.replicas as u64;
        let mut v = self.view + 1;
        while v % n != me.0 as u64 {
            v += 1;
        }
        self.view = v;
        self.promotions += 1;
        // Continue the sequence space from what this replica applied; any
        // un-replicated tail of the old primary is lost (async semantics).
        self.checkpoint_and_reset_log();
        self.acked.clear();
        self.reorder.clear();
        let peers = self.peer_cache.take(self.cfg.replicas, me);
        for &b in &peers {
            ctx.send(b, Msg::Heartbeat { view: self.view });
        }
        self.peer_cache.restore(peers);
        ctx.set_timer(Duration::from_micros(1), TAG_SHIP);
        if let Some(f) = self.cfg.failover {
            ctx.set_timer(f.heartbeat, TAG_HEARTBEAT);
        }
    }

    fn handle_put(
        &mut self,
        ctx: &mut Context<Msg>,
        op_id: u64,
        key: Key,
        value: u64,
        reply_to: NodeId,
    ) {
        let me = ctx.self_id();
        let primary = self.current_primary();
        if me != primary {
            // Forward to the primary, preserving the client address.
            ctx.send(primary, Msg::Put { op_id, key, value, reply_to });
            return;
        }
        let span = ctx.span_open("primary_write");
        let val = Value::from_u64(value);
        // Stamp the record with the seq the WAL is about to assign, so a
        // replay rebuilds the store with the exact same timestamps.
        let now_us = ctx.now().as_micros();
        let seq = self.dur.wal.next_seq();
        let ts = LamportTimestamp::new(seq, 0);
        let appended = self.dur.log(ctx, key, val, ts, now_us);
        debug_assert_eq!(appended, seq);
        self.store.put(key, Value::from_u64(value), ts, now_us);
        match self.cfg.mode {
            PrimaryMode::Sync { acks_required } => {
                self.pending.insert(
                    seq,
                    PendingWrite { client: reply_to, op_id, done: false, issued_at: now_us, span },
                );
                // Span still active: the synchronous log-ship fan-out and
                // the write timeout below carry it.
                let backups = self.peer_cache.take(self.cfg.replicas, me);
                for &b in &backups {
                    self.ship_to(ctx, b);
                }
                self.peer_cache.restore(backups);
                ctx.set_timer(self.cfg.write_timeout, TAG_WRITE_TIMEOUT_BASE + seq);
                if acks_required == 0 {
                    self.try_finish_write(ctx, seq);
                }
            }
            PrimaryMode::Async { .. } => {
                ctx.send(reply_to, Msg::PutResp { op_id, ok: true, stamp: (seq, 0) });
                ctx.span_close(span, SpanStatus::Ok);
            }
        }
    }

    fn try_finish_write(&mut self, ctx: &mut Context<Msg>, seq: u64) {
        let PrimaryMode::Sync { acks_required } = self.cfg.mode else {
            return;
        };
        let acks = self.acked.values().filter(|&&a| a >= seq).count();
        let quorum = match self.pending.get(&seq) {
            Some(p) => !p.done && acks >= acks_required,
            None => false,
        };
        if !quorum {
            return;
        }
        // Acknowledged writes leave `pending` immediately (the write
        // timer finds nothing and no-ops), so the ack-driven sweep in
        // `AppendAck` only ever walks writes still waiting for quorum
        // instead of every write of the last timeout window.
        let p = self.pending.remove(&seq).expect("checked above");
        ctx.record(EventKind::QuorumWait {
            node: ctx.self_id().0 as u64,
            kind: QuorumKind::Write,
            waited_us: ctx.now().as_micros().saturating_sub(p.issued_at),
            acks: acks as u64,
            needed: acks_required as u64,
        });
        ctx.send(p.client, Msg::PutResp { op_id: p.op_id, ok: true, stamp: (seq, 0) });
        ctx.span_close(p.span, SpanStatus::Ok);
    }

    fn apply_ready(&mut self, ctx: &mut Context<Msg>) {
        while let Some(rec) = self.reorder.remove(&(self.applied_seq + 1)) {
            // A backup's apply is durable: the record lands in its own
            // WAL before the store, so an amnesia restart replays it.
            let seq = self.dur.log(ctx, rec.key, rec.value.clone(), rec.ts, rec.written_at);
            debug_assert_eq!(seq, rec.seq);
            // Backup stores with the seq as stamp; written_at comes from
            // the record's origin time.
            self.store.put(
                rec.key,
                rec.value.clone(),
                LamportTimestamp::new(rec.seq, 0),
                rec.written_at,
            );
            self.applied_seq += 1;
        }
    }

    /// Adopt a (possibly newer) view observed on an incoming message.
    /// Returns `false` if the message came from a stale view and must be
    /// ignored.
    fn observe_view(&mut self, ctx: &mut Context<Msg>, view: u64) -> bool {
        if view < self.view {
            return false;
        }
        let was_primary = self.is_primary(ctx.self_id());
        self.view = view;
        self.last_heartbeat_us = ctx.now().as_micros();
        if was_primary && !self.is_primary(ctx.self_id()) {
            // Demoted: discard the un-replicated tail; future state
            // arrives from the new primary. Restart the failover watch
            // (its chain ended at promotion).
            self.checkpoint_and_reset_log();
            self.acked.clear();
            if let Some(f) = self.cfg.failover {
                ctx.set_timer(f.timeout, TAG_FAILOVER_CHECK);
            }
        }
        true
    }
}

impl Actor<Msg> for PrimaryReplica {
    fn role(&self) -> &'static str {
        "replica"
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        if ctx.self_id() == self.cfg.primary() {
            if let PrimaryMode::Async { ship_interval } = self.cfg.mode {
                ctx.set_timer(ship_interval, TAG_SHIP);
            } else {
                // Sync mode still retries shipping periodically so dropped
                // Appends (loss, healed partitions) eventually land.
                ctx.set_timer(Duration::from_millis(50), TAG_SHIP);
            }
            if let Some(f) = self.cfg.failover {
                ctx.set_timer(f.heartbeat, TAG_HEARTBEAT);
            }
        } else if let Some(f) = self.cfg.failover {
            self.last_heartbeat_us = ctx.now().as_micros();
            ctx.set_timer(f.timeout, TAG_FAILOVER_CHECK);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>, amnesia: bool) {
        let me = ctx.self_id();
        if amnesia {
            // RAM is gone; the disk (WAL, checkpoint, view number)
            // survives. Rebuild the store as checkpoint + log tail and
            // drop everything that only lived in memory.
            for (_, p) in std::mem::take(&mut self.pending) {
                ctx.span_close(p.span, SpanStatus::Abandoned);
            }
            self.reorder.clear();
            self.acked.clear();
            self.store = self.dur.replay(ctx, self.durable_snapshot.as_ref(), None);
            self.applied_seq = self.dur.wal.last_seq();
        }
        // The simulator dropped all pending timers at crash time; re-arm
        // the periodic chains for whatever role the durable view implies.
        self.last_heartbeat_us = ctx.now().as_micros();
        if self.is_primary(me) {
            let interval = match self.cfg.mode {
                PrimaryMode::Async { ship_interval } => ship_interval,
                PrimaryMode::Sync { .. } => Duration::from_millis(50),
            };
            ctx.set_timer(interval, TAG_SHIP);
            if let Some(f) = self.cfg.failover {
                ctx.set_timer(f.heartbeat, TAG_HEARTBEAT);
            }
        } else if let Some(f) = self.cfg.failover {
            ctx.set_timer(f.timeout, TAG_FAILOVER_CHECK);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if tag == TAG_SHIP {
            let me = ctx.self_id();
            if !self.is_primary(me) {
                return; // demoted: stop shipping (timer chain ends)
            }
            let backups = self.peer_cache.take(self.cfg.replicas, me);
            for &b in &backups {
                self.ship_to(ctx, b);
            }
            self.peer_cache.restore(backups);
            let interval = match self.cfg.mode {
                PrimaryMode::Async { ship_interval } => ship_interval,
                PrimaryMode::Sync { .. } => Duration::from_millis(50),
            };
            ctx.set_timer(interval, TAG_SHIP);
        } else if tag == TAG_HEARTBEAT {
            let me = ctx.self_id();
            if !self.is_primary(me) {
                return; // demoted: stop heartbeating
            }
            let peers = self.peer_cache.take(self.cfg.replicas, me);
            let view = self.view;
            for &b in &peers {
                ctx.send(b, Msg::Heartbeat { view });
            }
            self.peer_cache.restore(peers);
            if let Some(f) = self.cfg.failover {
                ctx.set_timer(f.heartbeat, TAG_HEARTBEAT);
            }
        } else if tag == TAG_FAILOVER_CHECK {
            let me = ctx.self_id();
            let Some(f) = self.cfg.failover else { return };
            if self.is_primary(me) {
                return; // became primary: the check chain ends
            }
            // How many views ahead is my next turn? Wait proportionally,
            // so successors contend in order instead of racing.
            let n = self.cfg.replicas as u64;
            let mut steps = 1u64;
            while (self.view + steps) % n != me.0 as u64 {
                steps += 1;
            }
            let silence = ctx.now().as_micros().saturating_sub(self.last_heartbeat_us);
            if silence > f.timeout.as_micros().saturating_mul(steps) {
                self.promote(ctx);
            } else {
                ctx.set_timer(f.timeout, TAG_FAILOVER_CHECK);
            }
        } else if tag >= TAG_WRITE_TIMEOUT_BASE {
            let seq = tag - TAG_WRITE_TIMEOUT_BASE;
            if let Some(p) = self.pending.remove(&seq) {
                if !p.done {
                    // Close before the failure response so the reply
                    // carries the client's root span, not this one.
                    ctx.span_close(p.span, SpanStatus::Failed);
                    ctx.send(p.client, Msg::PutResp { op_id: p.op_id, ok: false, stamp: (0, 0) });
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Put { op_id, key, value, reply_to } => {
                // First hop from the client: reply_to is the client itself.
                let reply = if reply_to == NodeId(u32::MAX) { from } else { reply_to };
                self.handle_put(ctx, op_id, key, value, reply);
            }
            Msg::Get { op_id, key } => {
                let span = ctx.span_open("replica_read");
                let v = self.store.get(key);
                ctx.send(
                    from,
                    Msg::GetResp {
                        op_id,
                        value: v.and_then(|x| x.value.as_u64()),
                        stamp: v.map(|x| (x.ts.counter, x.ts.actor)),
                        version_ts: v.map(|x| x.written_at),
                        applied_seq: self.applied_seq(),
                    },
                );
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::Append { view, records } => {
                if !self.observe_view(ctx, view) {
                    return; // stale ex-primary still shipping its old log
                }
                let span = ctx.span_open("backup_apply");
                for rec in records {
                    if rec.seq > self.applied_seq {
                        self.reorder.insert(rec.seq, rec);
                    }
                }
                self.apply_ready(ctx);
                ctx.send(from, Msg::AppendAck { seq: self.applied_seq });
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::Heartbeat { view } => {
                self.observe_view(ctx, view);
            }
            Msg::Snapshot { view, through, items } => {
                if !self.observe_view(ctx, view) {
                    return;
                }
                let span = ctx.span_open("backup_apply");
                if through > self.applied_seq {
                    for (key, value, seq, written_at) in items {
                        self.store.put(
                            key,
                            Value::from_u64(value),
                            LamportTimestamp::new(seq, 0),
                            written_at,
                        );
                    }
                    self.applied_seq = through;
                    // The installed state is durable: checkpoint it and
                    // realign the local log with the primary's seq space.
                    self.checkpoint_and_reset_log();
                    self.reorder.retain(|&s, _| s > through);
                    self.apply_ready(ctx);
                }
                ctx.send(from, Msg::AppendAck { seq: self.applied_seq });
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::AppendAck { seq } => {
                let prev = self.acked.entry(from).or_insert(0);
                *prev = (*prev).max(seq);
                // Any pending write at or below the new ack level may now
                // have its quorum. This is the protocol's hottest
                // handler; the sweep buffer is reused across acks and
                // `pending` holds only unacknowledged writes.
                let mut ready = std::mem::take(&mut self.ready_scratch);
                ready.clear();
                ready.extend(self.pending.range(..=seq).map(|(&s, _)| s));
                for &s in &ready {
                    self.try_finish_write(ctx, s);
                }
                self.ready_scratch = ready;
            }
            Msg::PutResp { .. } | Msg::GetResp { .. } => {}
        }
    }

    fn key_versions(&self) -> Vec<(u64, u64)> {
        self.store.scan(..).map(|(k, v)| (k, v.value.as_u64().unwrap_or(0))).collect()
    }
}

/// Where a primary-copy client sends reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFrom {
    /// Always the primary (fresh, but no read scale-out).
    Primary,
    /// A fixed backup (models a geo-local replica).
    Replica(NodeId),
    /// A random replica per read.
    AnyReplica,
}

/// A scripted client for primary-copy deployments.
pub struct PrimaryClient {
    core: ClientCore,
    cfg: PrimaryConfig,
    read_from: ReadFrom,
}

impl PrimaryClient {
    /// Create a client session.
    pub fn new(
        session: u64,
        script: Vec<ScriptOp>,
        trace: SharedTrace,
        cfg: PrimaryConfig,
        read_from: ReadFrom,
    ) -> Self {
        PrimaryClient {
            core: ClientCore::new(session, script, trace, Duration::from_millis(800)),
            cfg,
            read_from,
        }
    }

    fn read_target(&self, ctx: &mut Context<Msg>) -> NodeId {
        match self.read_from {
            ReadFrom::Primary => self.cfg.primary(),
            ReadFrom::Replica(n) => n,
            ReadFrom::AnyReplica => NodeId(ctx.rng().index(self.cfg.replicas) as u32),
        }
    }
}

impl Actor<Msg> for PrimaryClient {
    fn role(&self) -> &'static str {
        "client"
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.core.start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        let read_target = self.read_target(ctx);
        // Record the replica the op will actually hit: primary for writes.
        let provisional = read_target;
        match self.core.handle_timer(ctx, tag, provisional) {
            TimerAction::Issue(op) => match op.kind {
                OpKind::Read => ctx.send(read_target, Msg::Get { op_id: op.op_id, key: op.key }),
                OpKind::Write => {
                    // With failover enabled, route via the local replica,
                    // which forwards to whatever primary its view names;
                    // static deployments go straight to node 0.
                    let target =
                        if self.cfg.failover.is_some() { read_target } else { self.cfg.primary() };
                    ctx.send(
                        target,
                        Msg::Put {
                            op_id: op.op_id,
                            key: op.key,
                            value: op.value.expect("write without value"),
                            reply_to: NodeId(u32::MAX),
                        },
                    );
                }
            },
            TimerAction::TimedOut(_) | TimerAction::None => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::PutResp { op_id, ok, stamp } => {
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome { ok, values: vec![], stamp: Some(stamp), version_ts: None },
                );
            }
            Msg::GetResp { op_id, value, stamp, version_ts, applied_seq: _ } => {
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome {
                        ok: true,
                        values: value.into_iter().collect(),
                        stamp,
                        version_ts: version_ts.map(SimTime::from_micros),
                    },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{optrace, FaultSchedule, LatencyModel, Sim, SimConfig};

    fn build(
        cfg: PrimaryConfig,
        clients: Vec<PrimaryClient>,
        seed: u64,
        faults: FaultSchedule,
    ) -> Sim<Msg> {
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(seed)
                .latency(LatencyModel::Constant(Duration::from_millis(5)))
                .faults(faults),
        );
        for _ in 0..cfg.replicas {
            sim.add_node(Box::new(PrimaryReplica::new(cfg)));
        }
        for c in clients {
            sim.add_node(Box::new(c));
        }
        sim
    }

    fn one_write() -> Vec<ScriptOp> {
        vec![ScriptOp { gap_us: 1_000, kind: OpKind::Write, key: 1 }]
    }

    #[test]
    fn sync_write_then_backup_read_is_fresh() {
        let trace = optrace::shared_trace();
        let cfg = PrimaryConfig::sync_all(3);
        let writer = PrimaryClient::new(1, one_write(), trace.clone(), cfg, ReadFrom::Primary);
        let reader = PrimaryClient::new(
            2,
            vec![ScriptOp { gap_us: 100_000, kind: OpKind::Read, key: 1 }],
            trace.clone(),
            cfg,
            ReadFrom::Replica(NodeId(2)),
        );
        let mut sim = build(cfg, vec![writer, reader], 1, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        assert_eq!(read.value_read, vec![ClientCore::unique_value(1, 1)]);
    }

    #[test]
    fn sync_write_latency_includes_backup_round_trip() {
        let trace = optrace::shared_trace();
        let cfg = PrimaryConfig::sync_all(3);
        let writer = PrimaryClient::new(1, one_write(), trace.clone(), cfg, ReadFrom::Primary);
        let mut sim = build(cfg, vec![writer], 2, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        let w = &t.records()[0];
        assert!(w.ok);
        // client->primary (5) + primary->backup (5) + ack (5) + resp (5) = 20ms
        assert!(w.latency() >= Duration::from_millis(20), "latency {:?}", w.latency());
    }

    #[test]
    fn async_write_acks_after_one_hop() {
        let trace = optrace::shared_trace();
        let cfg = PrimaryConfig::async_lag(3, Duration::from_millis(100));
        let writer = PrimaryClient::new(1, one_write(), trace.clone(), cfg, ReadFrom::Primary);
        let mut sim = build(cfg, vec![writer], 3, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        let w = &t.records()[0];
        assert!(w.ok);
        // One round trip: 10ms.
        assert!(w.latency() <= Duration::from_millis(12), "latency {:?}", w.latency());
    }

    #[test]
    fn async_backup_read_is_stale_within_lag_window() {
        let trace = optrace::shared_trace();
        let cfg = PrimaryConfig::async_lag(2, Duration::from_millis(200));
        let writer = PrimaryClient::new(1, one_write(), trace.clone(), cfg, ReadFrom::Primary);
        // Read the backup 20ms after the write: inside the 200ms shipping
        // window, so it must miss the write.
        let early_reader = PrimaryClient::new(
            2,
            vec![ScriptOp { gap_us: 30_000, kind: OpKind::Read, key: 1 }],
            trace.clone(),
            cfg,
            ReadFrom::Replica(NodeId(1)),
        );
        // Read again at 600ms: shipped by now.
        let late_reader = PrimaryClient::new(
            3,
            vec![ScriptOp { gap_us: 600_000, kind: OpKind::Read, key: 1 }],
            trace.clone(),
            cfg,
            ReadFrom::Replica(NodeId(1)),
        );
        let mut sim = build(cfg, vec![writer, early_reader, late_reader], 4, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        let early = t.records().iter().find(|r| r.session == 2).unwrap();
        let late = t.records().iter().find(|r| r.session == 3).unwrap();
        assert!(early.value_read.is_empty(), "early read saw {:?}", early.value_read);
        assert_eq!(late.value_read, vec![ClientCore::unique_value(1, 1)]);
    }

    #[test]
    fn forwarded_write_reaches_primary() {
        // A write injected at a *backup* must be forwarded to the primary,
        // applied there, and become visible to a later read at the primary.
        let trace = optrace::shared_trace();
        let cfg = PrimaryConfig::sync_all(3);
        let reader = PrimaryClient::new(
            1,
            vec![ScriptOp { gap_us: 300_000, kind: OpKind::Read, key: 7 }],
            trace.clone(),
            cfg,
            ReadFrom::Primary,
        );
        let mut sim = build(cfg, vec![reader], 5, FaultSchedule::none());
        let injector = NodeId(cfg.replicas as u32); // the reader client's node id
        sim.inject_at(
            SimTime::from_millis(1),
            injector,
            NodeId(2), // a backup: must forward
            Msg::Put { op_id: 99, key: 7, value: 4242, reply_to: NodeId(u32::MAX) },
        );
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        let rd = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        assert_eq!(rd.value_read, vec![4242], "forwarded write visible at primary");
    }

    #[test]
    fn failover_promotes_backup_and_writes_resume() {
        // Async primary with view-change failover: node 0 crashes at
        // 200ms; a write issued at 1.5s (routed via replica 1, which by
        // then leads view 1) must succeed, and a later read at replica 1
        // must see it.
        let trace = optrace::shared_trace();
        let cfg = PrimaryConfig::async_lag(3, Duration::from_millis(50)).with_failover();
        let faults = FaultSchedule::none().crash(
            NodeId(0),
            SimTime::from_millis(200),
            SimTime::from_secs(60),
        );
        let writer = PrimaryClient::new(
            1,
            vec![ScriptOp { gap_us: 1_500_000, kind: OpKind::Write, key: 4 }],
            trace.clone(),
            cfg,
            ReadFrom::Replica(NodeId(1)),
        );
        let reader = PrimaryClient::new(
            2,
            vec![ScriptOp { gap_us: 3_000_000, kind: OpKind::Read, key: 4 }],
            trace.clone(),
            cfg,
            ReadFrom::Replica(NodeId(1)),
        );
        let mut sim = build(cfg, vec![writer, reader], 31, faults);
        sim.run_until(SimTime::from_secs(5));
        let t = trace.borrow();
        let w = t.records().iter().find(|r| r.kind == OpKind::Write).unwrap();
        let rd = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        assert!(w.ok, "write after failover must succeed");
        assert_eq!(rd.value_read, vec![ClientCore::unique_value(1, 1)]);
    }

    #[test]
    fn recovered_old_primary_rejoins_as_follower_and_catches_up() {
        // Node 0 crashes, node 1 takes over and accepts a write; node 0
        // recovers, is demoted by the higher view, and receives the state
        // (snapshot + log): a late read at replica 0 sees the write.
        let trace = optrace::shared_trace();
        let cfg = PrimaryConfig::async_lag(3, Duration::from_millis(50)).with_failover();
        let faults = FaultSchedule::none().crash(
            NodeId(0),
            SimTime::from_millis(200),
            SimTime::from_secs(2),
        );
        let writer = PrimaryClient::new(
            1,
            vec![ScriptOp { gap_us: 1_500_000, kind: OpKind::Write, key: 7 }],
            trace.clone(),
            cfg,
            ReadFrom::Replica(NodeId(1)),
        );
        let reader_at_old_primary = PrimaryClient::new(
            2,
            vec![ScriptOp { gap_us: 4_000_000, kind: OpKind::Read, key: 7 }],
            trace.clone(),
            cfg,
            ReadFrom::Replica(NodeId(0)),
        );
        let mut sim = build(cfg, vec![writer, reader_at_old_primary], 32, faults);
        sim.run_until(SimTime::from_secs(6));
        let t = trace.borrow();
        let rd = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        assert_eq!(
            rd.value_read,
            vec![ClientCore::unique_value(1, 1)],
            "recovered ex-primary must be caught up by the new primary"
        );
    }

    #[test]
    fn primary_crash_blocks_writes_but_backups_serve_reads() {
        let trace = optrace::shared_trace();
        let cfg = PrimaryConfig::sync_all(3);
        let faults = FaultSchedule::none().crash(
            NodeId(0),
            SimTime::from_millis(50),
            SimTime::from_secs(60),
        );
        // Write before the crash; write after the crash; read after.
        let early_writer =
            PrimaryClient::new(1, one_write(), trace.clone(), cfg, ReadFrom::Primary);
        let late_writer = PrimaryClient::new(
            2,
            vec![ScriptOp { gap_us: 200_000, kind: OpKind::Write, key: 2 }],
            trace.clone(),
            cfg,
            ReadFrom::Primary,
        );
        let reader = PrimaryClient::new(
            3,
            vec![ScriptOp { gap_us: 500_000, kind: OpKind::Read, key: 1 }],
            trace.clone(),
            cfg,
            ReadFrom::Replica(NodeId(1)),
        );
        let mut sim = build(cfg, vec![early_writer, late_writer, reader], 6, faults);
        sim.run_until(SimTime::from_secs(3));
        let t = trace.borrow();
        let w1 = t.records().iter().find(|r| r.session == 1).unwrap();
        let w2 = t.records().iter().find(|r| r.session == 2).unwrap();
        let rd = t.records().iter().find(|r| r.session == 3).unwrap();
        assert!(w1.ok, "pre-crash write succeeds");
        assert!(!w2.ok, "write during primary crash must fail (no failover)");
        assert!(rd.ok, "backup still serves reads");
        assert_eq!(rd.value_read, vec![ClientCore::unique_value(1, 1)]);
    }
}
