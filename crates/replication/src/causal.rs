//! Causally consistent multi-master replication (COPS-style "causal+").
//!
//! Each replica accepts local reads and writes with no coordination; a
//! write is broadcast with a **dependency vector**: the version vector of
//! everything the origin replica had applied when the write happened.
//! Receivers buffer a remote write until its dependencies are satisfied
//! locally, so no replica ever exposes a state that is not causally
//! closed. Convergent conflict resolution (LWW on Lamport stamps, whose
//! order extends causality) gives the "+" in causal+.
//!
//! Clients are sticky to a home replica — causal consistency is a
//! *replica-local* property here; session migration without tokens
//! reintroduces anomalies, which is exactly what experiment E3
//! demonstrates on the `eventual` protocol.

use crate::common::{ClientCore, OpOutcome, ScriptOp, TimerAction};
use crate::kernel::durability::WalState;
use crate::kernel::propagation::PeerCache;
use clocks::{LamportClock, LamportTimestamp, VersionVector};
use kvstore::{Key, MvStore, Value};
use obs::EventKind;
use simnet::{Actor, Context, Duration, NodeId, OpKind, SharedTrace, SimTime, SpanStatus};
use std::collections::BTreeMap;

/// A replicated write with its causal dependencies.
#[derive(Debug, Clone)]
pub struct CausalWrite {
    /// Origin replica.
    pub origin: u64,
    /// Origin-local sequence number (1-based, contiguous per origin).
    pub seq: u64,
    /// Everything the origin had applied *before* this write.
    pub deps: VersionVector,
    /// Key.
    pub key: Key,
    /// Unique write id.
    pub value: u64,
    /// LWW stamp (Lamport order extends causal order).
    pub ts: LamportTimestamp,
    /// Origin wall time (µs).
    pub written_at: u64,
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client read (local).
    Get {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
    },
    /// Read response.
    GetResp {
        /// Client op id.
        op_id: u64,
        /// Value if present.
        value: Option<u64>,
        /// Stamp of the version.
        stamp: Option<(u64, u64)>,
        /// Origin write time (µs).
        version_ts: Option<u64>,
    },
    /// Client write (local).
    Put {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
        /// Unique write id.
        value: u64,
    },
    /// Write ack.
    PutResp {
        /// Client op id.
        op_id: u64,
        /// Assigned stamp.
        stamp: (u64, u64),
    },
    /// Replication of a causal write.
    Replicate {
        /// The write and its dependency vector.
        write: CausalWrite,
    },
}

impl simnet::MsgMeta for Msg {
    fn variant_name(&self) -> &'static str {
        match self {
            Msg::Get { .. } => "get",
            Msg::GetResp { .. } => "get_resp",
            Msg::Put { .. } => "put",
            Msg::PutResp { .. } => "put_resp",
            Msg::Replicate { .. } => "replicate",
        }
    }
}

/// A causal replica.
pub struct CausalReplica {
    replicas: usize,
    store: MvStore,
    /// Durable log of applied writes. The replication metadata (`applied`,
    /// `versions`, `my_seq`) is modeled as fsynced alongside each append:
    /// rolling the applied vector back after a restart would break
    /// origin-seq contiguity and wedge dependency buffering forever.
    /// Appends go through `dur.wal` directly (not `WalState::log`):
    /// `apply` has no simulator context, so appends here are un-evented —
    /// the WAL metrics contract covers the store protocols' data path.
    dur: WalState,
    clock: LamportClock,
    /// `applied[r]` = how many of replica r's writes have been applied.
    applied: VersionVector,
    /// My own write counter.
    my_seq: u64,
    /// Writes waiting for their dependencies.
    buffer: Vec<CausalWrite>,
    /// `(origin, seq)` of the version currently stored per key, used to
    /// detect concurrent (conflicting) overwrites.
    versions: BTreeMap<Key, (u64, u64)>,
    /// High-water mark of buffered-then-applied writes (metric: how much
    /// delaying causality actually required).
    pub delayed_applies: u64,
    /// Reusable fan-out peer list (membership is fixed for a run).
    peer_cache: PeerCache,
}

impl CausalReplica {
    /// Create a replica for a deployment of `replicas` nodes.
    pub fn new(replicas: usize) -> Self {
        CausalReplica {
            replicas,
            store: MvStore::new(),
            dur: WalState::new(),
            clock: LamportClock::new(),
            applied: VersionVector::new(),
            my_seq: 0,
            buffer: Vec::new(),
            versions: BTreeMap::new(),
            delayed_applies: 0,
            peer_cache: PeerCache::default(),
        }
    }

    /// The local store.
    pub fn store(&self) -> &MvStore {
        &self.store
    }

    /// The applied version vector.
    pub fn applied(&self) -> &VersionVector {
        &self.applied
    }

    fn deps_satisfied(&self, w: &CausalWrite) -> bool {
        // All of the origin's earlier writes, and everything the origin had
        // seen, must be applied here first.
        self.applied.get(w.origin) == w.seq - 1 && self.applied.dominates(&w.deps)
    }

    /// Apply a write; returns `true` if it was concurrent with (and LWW-
    /// resolved against) the version it replaced or lost to.
    fn apply(&mut self, w: &CausalWrite) -> bool {
        // The stored version conflicts iff the incoming write did not
        // causally observe it (it is neither the origin's own earlier
        // write nor covered by the dependency vector).
        let conflict = self
            .versions
            .get(&w.key)
            .is_some_and(|&(o, s)| !(o == w.origin && s < w.seq) && w.deps.get(o) < s);
        self.clock.observe(w.ts, 0);
        if self.store.put(w.key, Value::from_u64(w.value), w.ts, w.written_at) {
            self.dur.wal.append(w.key, Value::from_u64(w.value), w.ts, w.written_at);
            self.versions.insert(w.key, (w.origin, w.seq));
        }
        self.applied.observe(w.origin, w.seq);
        conflict
    }

    /// Apply every buffered write whose dependencies are now satisfied;
    /// returns the keys where an apply LWW-resolved a concurrent write.
    fn drain_buffer(&mut self) -> Vec<Key> {
        let mut conflicted = Vec::new();
        while let Some(pos) = self.buffer.iter().position(|w| self.deps_satisfied(w)) {
            let w = self.buffer.swap_remove(pos);
            if self.apply(&w) {
                conflicted.push(w.key);
            }
            self.delayed_applies += 1;
        }
        conflicted
    }

    /// Record one detected-and-LWW-resolved conflict on `key`.
    fn record_conflict(ctx: &mut Context<Msg>, key: Key) {
        let node = ctx.self_id().0 as u64;
        ctx.record(EventKind::ConflictDetected { node, key, siblings: 2 });
        ctx.record(EventKind::ConflictResolved { node, key, survivors: 1 });
    }
}

impl Actor<Msg> for CausalReplica {
    fn role(&self) -> &'static str {
        "replica"
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>, amnesia: bool) {
        if !amnesia {
            return;
        }
        // Rebuild the store and clock from the WAL; `applied`, `versions`,
        // and `my_seq` are durable (see the `wal` field). The dependency
        // buffer is volatile: buffered writes were never acknowledged or
        // counted in `applied`, so dropping them leaves the replica
        // causally closed — it merely loses un-applied remote writes,
        // which this protocol (no anti-entropy) also loses to a partition.
        self.buffer.clear();
        self.store = self.dur.replay(ctx, None, Some(&mut self.clock));
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let me = ctx.self_id();
        match msg {
            Msg::Get { op_id, key } => {
                let span = ctx.span_open("replica_read");
                let v = self.store.get(key);
                ctx.send(
                    from,
                    Msg::GetResp {
                        op_id,
                        value: v.and_then(|x| x.value.as_u64()),
                        stamp: v.map(|x| (x.ts.counter, x.ts.actor)),
                        version_ts: v.map(|x| x.written_at),
                    },
                );
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::Put { op_id, key, value } => {
                let span = ctx.span_open("replica_write");
                let deps = self.applied.clone();
                self.my_seq += 1;
                let ts = self.clock.tick(me.0 as u64);
                let w = CausalWrite {
                    origin: me.0 as u64,
                    seq: self.my_seq,
                    deps,
                    key,
                    value,
                    ts,
                    written_at: ctx.now().as_micros(),
                };
                self.apply(&w);
                ctx.send(from, Msg::PutResp { op_id, stamp: (ts.counter, ts.actor) });
                // Replicate fan-out still inside the replica span, so the
                // propagation hops belong to the write's span tree. The
                // write (and its dependency vector) moves into the last
                // send instead of a clone — this is the write hot path.
                let all_peers = self.peer_cache.take(self.replicas, me);
                if let Some((&last, rest)) = all_peers.split_last() {
                    for &peer in rest {
                        ctx.send(peer, Msg::Replicate { write: w.clone() });
                    }
                    ctx.send(last, Msg::Replicate { write: w });
                }
                self.peer_cache.restore(all_peers);
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::Replicate { write } => {
                if self.applied.get(write.origin) >= write.seq {
                    return; // duplicate
                }
                let span = ctx.span_open("replicate_apply");
                if self.deps_satisfied(&write) {
                    let key = write.key;
                    if self.apply(&write) {
                        Self::record_conflict(ctx, key);
                    }
                    for k in self.drain_buffer() {
                        Self::record_conflict(ctx, k);
                    }
                } else {
                    self.buffer.push(write);
                }
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::GetResp { .. } | Msg::PutResp { .. } => {}
        }
    }

    fn key_versions(&self) -> Vec<(u64, u64)> {
        self.store.scan(..).map(|(k, v)| (k, v.value.as_u64().unwrap_or(0))).collect()
    }
}

/// A sticky client for the causal protocol.
pub struct CausalClient {
    core: ClientCore,
    home: NodeId,
}

impl CausalClient {
    /// Create a client attached to `home`.
    pub fn new(session: u64, script: Vec<ScriptOp>, trace: SharedTrace, home: NodeId) -> Self {
        CausalClient {
            core: ClientCore::new(session, script, trace, Duration::from_millis(500)),
            home,
        }
    }
}

impl Actor<Msg> for CausalClient {
    fn role(&self) -> &'static str {
        "client"
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.core.start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        let home = self.home;
        match self.core.handle_timer(ctx, tag, home) {
            TimerAction::Issue(op) => {
                let msg = match op.kind {
                    OpKind::Read => Msg::Get { op_id: op.op_id, key: op.key },
                    OpKind::Write => Msg::Put {
                        op_id: op.op_id,
                        key: op.key,
                        value: op.value.expect("write without value"),
                    },
                };
                ctx.send(home, msg);
            }
            TimerAction::TimedOut(_) | TimerAction::None => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::GetResp { op_id, value, stamp, version_ts } => {
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome {
                        ok: true,
                        values: value.into_iter().collect(),
                        stamp,
                        version_ts: version_ts.map(SimTime::from_micros),
                    },
                );
            }
            Msg::PutResp { op_id, stamp } => {
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome { ok: true, values: vec![], stamp: Some(stamp), version_ts: None },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{optrace, LatencyModel, Sim, SimConfig};

    fn build(replicas: usize, clients: Vec<CausalClient>, seed: u64) -> Sim<Msg> {
        let mut sim = Sim::new(SimConfig::default().seed(seed).latency(LatencyModel::Uniform {
            min: Duration::from_millis(2),
            max: Duration::from_millis(40),
        }));
        for _ in 0..replicas {
            sim.add_node(Box::new(CausalReplica::new(replicas)));
        }
        for c in clients {
            sim.add_node(Box::new(c));
        }
        sim
    }

    #[test]
    fn local_write_read_cycle() {
        let trace = optrace::shared_trace();
        let c = CausalClient::new(
            1,
            vec![
                ScriptOp { gap_us: 1_000, kind: OpKind::Write, key: 1 },
                ScriptOp { gap_us: 1_000, kind: OpKind::Read, key: 1 },
            ],
            trace.clone(),
            NodeId(0),
        );
        let mut sim = build(3, vec![c], 1);
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[1].value_read, vec![ClientCore::unique_value(1, 1)]);
    }

    #[test]
    fn dependency_delays_out_of_order_delivery() {
        // Unit-level: a write with seq 2 from origin 0 arriving before
        // seq 1 must be buffered, then both applied in order.
        let mut r = CausalReplica::new(2);
        let w1 = CausalWrite {
            origin: 0,
            seq: 1,
            deps: VersionVector::new(),
            key: 1,
            value: 10,
            ts: LamportTimestamp::new(1, 0),
            written_at: 0,
        };
        let mut deps2 = VersionVector::new();
        deps2.observe(0, 1);
        let w2 = CausalWrite {
            origin: 0,
            seq: 2,
            deps: deps2,
            key: 1,
            value: 20,
            ts: LamportTimestamp::new(2, 0),
            written_at: 0,
        };
        assert!(!r.deps_satisfied(&w2));
        r.buffer.push(w2);
        assert!(r.deps_satisfied(&w1));
        r.apply(&w1);
        r.drain_buffer();
        assert_eq!(r.applied.get(0), 2);
        assert_eq!(r.store.get(1).unwrap().value.as_u64(), Some(20));
        assert_eq!(r.delayed_applies, 1);
    }

    #[test]
    fn cross_key_causality_preserved() {
        // The COPS photo-ACL anomaly: session A writes k1 then k2 at
        // replica 0; replica 1's client reading k2's new value must also
        // see k1's new value (replication of k2 depends on k1).
        // With random latencies this is exactly what dependency buffering
        // guarantees; run many sessions and check the invariant on the
        // trace directly.
        let trace = optrace::shared_trace();
        let writer = CausalClient::new(
            1,
            vec![
                ScriptOp { gap_us: 10_000, kind: OpKind::Write, key: 1 },
                ScriptOp { gap_us: 1_000, kind: OpKind::Write, key: 2 },
            ],
            trace.clone(),
            NodeId(0),
        );
        // Readers at replica 1 poll k2 then k1 in tight loops.
        let mut reader_script = Vec::new();
        for _ in 0..30 {
            reader_script.push(ScriptOp { gap_us: 3_000, kind: OpKind::Read, key: 2 });
            reader_script.push(ScriptOp { gap_us: 100, kind: OpKind::Read, key: 1 });
        }
        let reader = CausalClient::new(2, reader_script, trace.clone(), NodeId(1));
        let mut sim = build(2, vec![writer, reader], 7);
        sim.run_until(SimTime::from_secs(2));
        let t = trace.borrow();
        let v_k1 = ClientCore::unique_value(1, 1);
        let v_k2 = ClientCore::unique_value(1, 2);
        // Scan reader's ops in order: once k2's new value is visible, the
        // *next* read of k1 must return k1's new value.
        let mut saw_k2 = false;
        for r in t.records().iter().filter(|r| r.session == 2) {
            if r.key == 2 && r.value_read == vec![v_k2] {
                saw_k2 = true;
            }
            if saw_k2 && r.key == 1 {
                assert_eq!(
                    r.value_read,
                    vec![v_k1],
                    "causal anomaly: saw k2's write but not its dependency k1"
                );
            }
        }
        assert!(saw_k2, "test vacuous: k2's write never observed");
    }

    #[test]
    fn replicas_converge_after_quiescence() {
        let trace = optrace::shared_trace();
        let mut clients = Vec::new();
        for s in 1..=3u64 {
            let script: Vec<ScriptOp> = (0..10)
                .map(|i| ScriptOp { gap_us: 2_000, kind: OpKind::Write, key: i % 4 })
                .collect();
            clients.push(CausalClient::new(s, script, trace.clone(), NodeId(s as u32 - 1)));
        }
        // Late readers at every replica for every key must agree.
        for (s, home) in [(10u64, 0u32), (11, 1), (12, 2)] {
            let script: Vec<ScriptOp> =
                (0..4).map(|k| ScriptOp { gap_us: 800_000, kind: OpKind::Read, key: k }).collect();
            clients.push(CausalClient::new(s, script, trace.clone(), NodeId(home)));
        }
        let mut sim = build(3, clients, 9);
        sim.run_until(SimTime::from_secs(10));
        let t = trace.borrow();
        for key in 0..4u64 {
            let mut per_reader: Vec<Vec<u64>> = Vec::new();
            for s in 10..=12u64 {
                let vals: Vec<u64> = t
                    .records()
                    .iter()
                    .filter(|r| r.session == s && r.key == key && r.kind == OpKind::Read)
                    .flat_map(|r| r.value_read.clone())
                    .collect();
                per_reader.push(vals);
            }
            assert_eq!(per_reader[0], per_reader[1], "key {key} diverged (0 vs 1)");
            assert_eq!(per_reader[1], per_reader[2], "key {key} diverged (1 vs 2)");
        }
    }
}
