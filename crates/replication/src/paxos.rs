//! Multi-Paxos replicated state machine (the strong end of the spectrum).
//!
//! Every node is proposer + acceptor + learner over a shared command log.
//! A stable leader drives Phase 2 (`Accept`/`Accepted`) per log slot and
//! commits at a majority; Phase 1 (`Prepare`/`Promise`) runs once per
//! leadership change, adopting the highest-ballot accepted entries. Leader
//! liveness is tracked by heartbeats; on silence, the next candidate bids
//! with a higher ballot (randomized timeouts avoid duels).
//!
//! **Reads go through the log** as no-op commands, so both reads and
//! writes are linearizable at majority-commit cost — no leader-lease
//! optimization (listed as an extension in DESIGN.md). Under partition the
//! minority side can elect no leader and commits nothing: the CP corner of
//! CAP that E4 measures, and the latency floor that E2/E10 measure.
//!
//! Clients submit to their believed leader and follow `NotLeader` hints /
//! timeouts with round-robin retry.

use crate::common::{ClientCore, IssueOp, OpOutcome, ScriptOp, TimerAction};
use crate::kernel::propagation::{AckTracker, PeerCache};
use clocks::LamportTimestamp;
use kvstore::{Key, MvStore, Value};
use obs::{EventKind, QuorumKind};
use simnet::{Actor, Context, Duration, NodeId, OpKind, SharedTrace, SimTime, SpanId, SpanStatus};
use std::collections::BTreeMap;

/// A ballot number: `(round, node)` — totally ordered, node breaks ties.
pub type Ballot = (u64, u64);

/// A state-machine command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// The client to answer.
    pub client: NodeId,
    /// The client's op id.
    pub op_id: u64,
    /// Key.
    pub key: Key,
    /// `Some(v)` = write of unique id `v`; `None` = linearizable read.
    pub value: Option<u64>,
    /// Origin time of the request (µs) for staleness accounting.
    pub issued_at: u64,
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client request (read or write).
    Request {
        /// Client op id.
        op_id: u64,
        /// Key.
        key: Key,
        /// `Some` = write; `None` = read.
        value: Option<u64>,
    },
    /// Reply to the client.
    Response {
        /// Client op id.
        op_id: u64,
        /// Success.
        ok: bool,
        /// For reads: the value.
        value: Option<u64>,
        /// Stamp `(slot, 0)` of the version read / written.
        stamp: (u64, u64),
        /// Origin time of the version read (µs).
        version_ts: Option<u64>,
    },
    /// This node is not the leader; try the hinted node.
    NotLeader {
        /// Client op id.
        op_id: u64,
        /// Best guess at the current leader.
        hint: Option<NodeId>,
    },
    /// Phase 1a.
    Prepare {
        /// Candidate's ballot.
        ballot: Ballot,
    },
    /// Phase 1b.
    Promise {
        /// The ballot being promised.
        ballot: Ballot,
        /// Accepted entries the candidate must adopt: `(slot, ballot, cmd)`.
        accepted: Vec<(u64, Ballot, Command)>,
    },
    /// Phase 2a.
    Accept {
        /// Leader's ballot.
        ballot: Ballot,
        /// Log slot.
        slot: u64,
        /// Proposed command.
        cmd: Command,
    },
    /// Phase 2b.
    Accepted {
        /// Ballot.
        ballot: Ballot,
        /// Slot.
        slot: u64,
    },
    /// Learner fast-path: a slot is committed.
    Commit {
        /// Slot.
        slot: u64,
        /// The committed command.
        cmd: Command,
    },
    /// Leader liveness.
    Heartbeat {
        /// Leader's ballot.
        ballot: Ballot,
    },
}

impl simnet::MsgMeta for Msg {
    fn variant_name(&self) -> &'static str {
        match self {
            Msg::Request { .. } => "request",
            Msg::Response { .. } => "response",
            Msg::NotLeader { .. } => "not_leader",
            Msg::Prepare { .. } => "prepare",
            Msg::Promise { .. } => "promise",
            Msg::Accept { .. } => "accept",
            Msg::Accepted { .. } => "accepted",
            Msg::Commit { .. } => "commit",
            Msg::Heartbeat { .. } => "heartbeat",
        }
    }
}

/// Per-slot acceptor state.
#[derive(Debug, Clone)]
struct AcceptedEntry {
    ballot: Ballot,
    cmd: Command,
}

/// Node role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct PaxosConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Leader heartbeat interval.
    pub heartbeat: Duration,
    /// Election timeout base (randomized up to 2x).
    pub election_timeout: Duration,
}

impl PaxosConfig {
    /// Sensible defaults for an `n`-node group.
    pub fn new(nodes: usize) -> Self {
        PaxosConfig {
            nodes,
            heartbeat: Duration::from_millis(25),
            election_timeout: Duration::from_millis(150),
        }
    }

    /// Majority size.
    pub fn majority(&self) -> usize {
        self.nodes / 2 + 1
    }
}

const TAG_HEARTBEAT: u64 = 1;
const TAG_ELECTION: u64 = 2;

/// A Paxos node.
pub struct PaxosNode {
    cfg: PaxosConfig,
    role: Role,
    /// Highest ballot promised (acceptor).
    promised: Ballot,
    /// Accepted entries per slot (acceptor).
    accepted: BTreeMap<u64, AcceptedEntry>,
    /// Committed commands per slot (learner).
    committed: BTreeMap<u64, Command>,
    /// Next slot to apply to the state machine.
    apply_index: u64,
    /// The replicated state machine.
    store: MvStore,
    /// Leader: my current ballot.
    my_ballot: Ballot,
    /// Leader: next free slot.
    next_slot: u64,
    /// Leader: Phase 2 quorum tracking per slot (distinct acceptors).
    p2: BTreeMap<u64, AckTracker>,
    /// Candidate: Phase 1 quorum tracking (distinct promisers).
    p1: AckTracker,
    p1_adopted: BTreeMap<u64, AcceptedEntry>,
    /// Who I believe leads (for NotLeader hints).
    leader_hint: Option<NodeId>,
    /// Best-effort write dedup across client retries: (client, op_id) →
    /// slot. At-least-once semantics remain possible across failover (the
    /// new leader may lack the entry); duplicate applies of the same
    /// unique value are idempotent for the register state machine.
    seen_writes: BTreeMap<(u32, u64), u64>,
    /// Election timer bookkeeping: id of the live timer.
    election_timer: Option<u64>,
    /// Leader: tracing span per proposed slot, closed `Ok` when the slot
    /// commits and the client is answered, `Abandoned` on demotion or
    /// amnesia (the new leader re-proposes under the client's retry).
    slot_spans: BTreeMap<u64, SpanId>,
    /// Reusable fan-out peer list (membership is fixed for a run).
    peer_cache: PeerCache,
    /// Reusable scratch for the heartbeat retransmit sweeps.
    cmd_scratch: Vec<(u64, Command)>,
}

impl PaxosNode {
    /// Create a node.
    pub fn new(cfg: PaxosConfig) -> Self {
        PaxosNode {
            cfg,
            role: Role::Follower,
            promised: (0, 0),
            accepted: BTreeMap::new(),
            committed: BTreeMap::new(),
            apply_index: 1,
            store: MvStore::new(),
            my_ballot: (0, 0),
            next_slot: 1,
            p2: BTreeMap::new(),
            p1: AckTracker::new(cfg.majority()),
            p1_adopted: BTreeMap::new(),
            leader_hint: None,
            election_timer: None,
            seen_writes: BTreeMap::new(),
            slot_spans: BTreeMap::new(),
            peer_cache: PeerCache::default(),
            cmd_scratch: Vec::new(),
        }
    }

    /// The applied state machine (tests inspect it).
    pub fn store(&self) -> &MvStore {
        &self.store
    }

    /// Whether this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Number of committed slots.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    fn reset_election_timer(&mut self, ctx: &mut Context<Msg>) {
        if let Some(t) = self.election_timer.take() {
            ctx.cancel_timer(t);
        }
        let base = self.cfg.election_timeout.as_micros();
        let jitter = ctx.rng().below(base.max(1));
        self.election_timer =
            Some(ctx.set_timer(Duration::from_micros(base + jitter), TAG_ELECTION));
    }

    fn start_election(&mut self, ctx: &mut Context<Msg>) {
        let me = ctx.self_id();
        self.role = Role::Candidate;
        let round = self.promised.0.max(self.my_ballot.0) + 1;
        self.my_ballot = (round, me.0 as u64);
        self.p1 = AckTracker::new(self.cfg.majority());
        self.p1.ack(me); // self-promise
        self.p1_adopted = self.accepted.clone();
        self.promised = self.my_ballot;
        let peers = self.peer_cache.take(self.cfg.nodes, me);
        for &p in &peers {
            ctx.send(p, Msg::Prepare { ballot: self.my_ballot });
        }
        self.peer_cache.restore(peers);
        self.reset_election_timer(ctx);
        self.maybe_become_leader(ctx);
    }

    fn maybe_become_leader(&mut self, ctx: &mut Context<Msg>) {
        if self.role != Role::Candidate || !self.p1.reached() {
            return;
        }
        self.role = Role::Leader;
        self.leader_hint = Some(ctx.self_id());
        // Adopt accepted entries: re-propose them under my ballot, starting
        // after the highest committed slot.
        let adopted = std::mem::take(&mut self.p1_adopted);
        let max_seen =
            adopted.keys().copied().chain(self.committed.keys().copied()).max().unwrap_or(0);
        self.next_slot = max_seen + 1;
        for (slot, entry) in adopted {
            if !self.committed.contains_key(&slot) {
                self.propose_in_slot(ctx, slot, entry.cmd);
            }
        }
        ctx.set_timer(self.cfg.heartbeat, TAG_HEARTBEAT);
    }

    fn propose_in_slot(&mut self, ctx: &mut Context<Msg>, slot: u64, cmd: Command) {
        let me = ctx.self_id();
        // Self-accept.
        self.accepted.insert(slot, AcceptedEntry { ballot: self.my_ballot, cmd: cmd.clone() });
        let mut tracker = AckTracker::new(self.cfg.majority());
        tracker.ack(me);
        self.p2.insert(slot, tracker);
        let peers = self.peer_cache.take(self.cfg.nodes, me);
        for &p in &peers {
            ctx.send(p, Msg::Accept { ballot: self.my_ballot, slot, cmd: cmd.clone() });
        }
        self.peer_cache.restore(peers);
        self.maybe_commit(ctx, slot);
    }

    fn maybe_commit(&mut self, ctx: &mut Context<Msg>, slot: u64) {
        if self.role != Role::Leader {
            return;
        }
        let acks = self.p2.get(&slot).map(AckTracker::count).unwrap_or(0);
        if acks < self.cfg.majority() || self.committed.contains_key(&slot) {
            return;
        }
        let Some(entry) = self.accepted.get(&slot) else {
            return;
        };
        let cmd = entry.cmd.clone();
        ctx.record(EventKind::QuorumWait {
            node: ctx.self_id().0 as u64,
            kind: if cmd.value.is_some() { QuorumKind::Write } else { QuorumKind::Read },
            waited_us: ctx.now().as_micros().saturating_sub(cmd.issued_at),
            acks: acks as u64,
            needed: self.cfg.majority() as u64,
        });
        self.committed.insert(slot, cmd.clone());
        let me = ctx.self_id();
        let peers = self.peer_cache.take(self.cfg.nodes, me);
        for &p in &peers {
            ctx.send(p, Msg::Commit { slot, cmd: cmd.clone() });
        }
        self.peer_cache.restore(peers);
        self.apply_ready(ctx, true);
    }

    /// Apply committed slots in order; the leader answers clients.
    fn apply_ready(&mut self, ctx: &mut Context<Msg>, answer: bool) {
        while let Some(cmd) = self.committed.get(&self.apply_index).cloned() {
            let slot = self.apply_index;
            self.apply_index += 1;
            let (value, stamp, version_ts) = match cmd.value {
                Some(v) => {
                    self.store.put(
                        cmd.key,
                        Value::from_u64(v),
                        LamportTimestamp::new(slot, 0),
                        cmd.issued_at,
                    );
                    (None, (slot, 0), None)
                }
                None => {
                    let ver = self.store.get(cmd.key);
                    (
                        ver.and_then(|x| x.value.as_u64()),
                        ver.map(|x| (x.ts.counter, x.ts.actor)).unwrap_or((0, 0)),
                        ver.map(|x| x.written_at),
                    )
                }
            };
            if answer && self.role == Role::Leader {
                ctx.send(
                    cmd.client,
                    Msg::Response { op_id: cmd.op_id, ok: true, value, stamp, version_ts },
                );
                if let Some(span) = self.slot_spans.remove(&slot) {
                    ctx.span_close(span, SpanStatus::Ok);
                }
            }
        }
    }

    /// Close every in-flight proposal span as abandoned: a demoted (or
    /// amnesiac) leader will never answer those clients — the new leader
    /// re-proposes under the clients' retries.
    fn abandon_proposals(&mut self, ctx: &mut Context<Msg>) {
        for (_, span) in std::mem::take(&mut self.slot_spans) {
            ctx.span_close(span, SpanStatus::Abandoned);
        }
    }
}

impl Actor<Msg> for PaxosNode {
    fn role(&self) -> &'static str {
        "replica"
    }

    fn on_recover(&mut self, ctx: &mut Context<Msg>, amnesia: bool) {
        if amnesia {
            // Classic Paxos durability: `promised`, `accepted`, and my
            // ballot sit on stable storage (an acceptor fsyncs before
            // answering), and the learner's `committed` log plus the write
            // dedup table ride along. Everything else is volatile: the
            // node restarts as a follower with empty quorum tallies and
            // rebuilds the state machine by re-applying committed slots in
            // order — without re-answering clients.
            self.role = Role::Follower;
            self.abandon_proposals(ctx);
            self.p1 = AckTracker::new(self.cfg.majority());
            self.p1_adopted.clear();
            self.p2.clear();
            self.leader_hint = None;
            self.store = MvStore::new();
            self.apply_index = 1;
            self.apply_ready(ctx, false);
            ctx.record(EventKind::WalReplay {
                node: ctx.self_id().0 as u64,
                records: self.apply_index - 1,
            });
        }
        // The crash killed every timer: a recovered leader must resume its
        // heartbeat chain, everyone else re-arms the election timer.
        self.election_timer = None;
        if self.role == Role::Leader {
            ctx.set_timer(self.cfg.heartbeat, TAG_HEARTBEAT);
        } else {
            self.reset_election_timer(ctx);
        }
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        // Node 0 bids immediately so steady state establishes fast; others
        // arm their election timers.
        if ctx.self_id() == NodeId(0) {
            self.start_election(ctx);
        } else {
            self.reset_election_timer(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, id: u64, tag: u64) {
        match tag {
            TAG_HEARTBEAT if self.role == Role::Leader => {
                let me = ctx.self_id();
                let peers = self.peer_cache.take(self.cfg.nodes, me);
                for &p in &peers {
                    ctx.send(p, Msg::Heartbeat { ballot: self.my_ballot });
                }
                // Retransmit Phase 2 for uncommitted slots (message loss
                // would otherwise stall a slot — and the apply index —
                // forever). Bounded: only slots at or above the apply
                // frontier can block progress. The sweep buffer is
                // reused across firings.
                let mut sweep = std::mem::take(&mut self.cmd_scratch);
                sweep.clear();
                sweep.extend(
                    self.accepted
                        .range(self.apply_index..)
                        .filter(|(slot, _)| !self.committed.contains_key(slot))
                        .map(|(&slot, e)| (slot, e.cmd.clone()))
                        .take(32),
                );
                for (slot, cmd) in sweep.drain(..) {
                    let majority = self.cfg.majority();
                    self.p2.entry(slot).or_insert_with(|| {
                        let mut tracker = AckTracker::new(majority);
                        tracker.ack(me);
                        tracker
                    });
                    for &p in &peers {
                        ctx.send(p, Msg::Accept { ballot: self.my_ballot, slot, cmd: cmd.clone() });
                    }
                }
                // Re-announce commits the followers may have missed (a
                // dropped Commit leaves their apply index stalled).
                sweep.extend(
                    self.committed
                        .range(self.apply_index.saturating_sub(8)..)
                        .map(|(&s, c)| (s, c.clone()))
                        .take(16),
                );
                for (slot, cmd) in sweep.drain(..) {
                    for &p in &peers {
                        ctx.send(p, Msg::Commit { slot, cmd: cmd.clone() });
                    }
                }
                self.cmd_scratch = sweep;
                self.peer_cache.restore(peers);
                ctx.set_timer(self.cfg.heartbeat, TAG_HEARTBEAT);
            }
            TAG_ELECTION => {
                if Some(id) != self.election_timer {
                    return; // stale timer
                }
                self.election_timer = None;
                if self.role != Role::Leader {
                    self.start_election(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Request { op_id, key, value } => {
                if self.role != Role::Leader {
                    ctx.send(from, Msg::NotLeader { op_id, hint: self.leader_hint });
                    return;
                }
                if value.is_some() {
                    if let Some(&slot) = self.seen_writes.get(&(from.0, op_id)) {
                        // Duplicate of an in-flight or committed write.
                        if self.committed.contains_key(&slot) {
                            ctx.send(
                                from,
                                Msg::Response {
                                    op_id,
                                    ok: true,
                                    value: None,
                                    stamp: (slot, 0),
                                    version_ts: None,
                                },
                            );
                        }
                        return;
                    }
                }
                let slot = self.next_slot;
                self.next_slot += 1;
                if value.is_some() {
                    self.seen_writes.insert((from.0, op_id), slot);
                }
                // Opened before the Phase 2 fan-out so every Accept (and
                // the eventual Response) rides the proposal span; closed
                // `Ok` in `apply_ready` once the client is answered.
                let span = ctx.span_open("paxos_propose");
                self.slot_spans.insert(slot, span);
                let cmd =
                    Command { client: from, op_id, key, value, issued_at: ctx.now().as_micros() };
                self.propose_in_slot(ctx, slot, cmd);
            }
            Msg::Prepare { ballot } => {
                if ballot > self.promised {
                    self.promised = ballot;
                    if self.role == Role::Leader {
                        self.role = Role::Follower;
                        self.abandon_proposals(ctx);
                    }
                    self.leader_hint = Some(NodeId(ballot.1 as u32));
                    let accepted: Vec<(u64, Ballot, Command)> =
                        self.accepted.iter().map(|(&s, e)| (s, e.ballot, e.cmd.clone())).collect();
                    ctx.send(from, Msg::Promise { ballot, accepted });
                    self.reset_election_timer(ctx);
                }
            }
            Msg::Promise { ballot, accepted } => {
                if self.role == Role::Candidate && ballot == self.my_ballot {
                    self.p1.ack(from);
                    for (slot, b, cmd) in accepted {
                        let e = self.p1_adopted.get(&slot);
                        if e.map(|x| b > x.ballot).unwrap_or(true) {
                            self.p1_adopted.insert(slot, AcceptedEntry { ballot: b, cmd });
                        }
                    }
                    self.maybe_become_leader(ctx);
                }
            }
            Msg::Accept { ballot, slot, cmd } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if self.role == Role::Leader && ballot != self.my_ballot {
                        self.role = Role::Follower;
                        self.abandon_proposals(ctx);
                    }
                    self.leader_hint = Some(NodeId(ballot.1 as u32));
                    let span = ctx.span_open("acceptor_accept");
                    self.accepted.insert(slot, AcceptedEntry { ballot, cmd });
                    ctx.send(from, Msg::Accepted { ballot, slot });
                    ctx.span_close(span, SpanStatus::Ok);
                    self.reset_election_timer(ctx);
                }
            }
            Msg::Accepted { ballot, slot } => {
                if self.role == Role::Leader && ballot == self.my_ballot {
                    let majority = self.cfg.majority();
                    let tracker = self.p2.entry(slot).or_insert_with(|| AckTracker::new(majority));
                    if tracker.ack(from) {
                        self.maybe_commit(ctx, slot);
                    }
                }
            }
            Msg::Commit { slot, cmd } => {
                let span = ctx.span_open("learner_commit");
                self.committed.entry(slot).or_insert(cmd);
                self.apply_ready(ctx, false);
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::Heartbeat { ballot } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if self.role != Role::Follower && ballot != self.my_ballot {
                        let was_leader = self.role == Role::Leader;
                        self.role = Role::Follower;
                        if was_leader {
                            self.abandon_proposals(ctx);
                        }
                    }
                    self.leader_hint = Some(NodeId(ballot.1 as u32));
                    self.reset_election_timer(ctx);
                }
            }
            Msg::Response { .. } | Msg::NotLeader { .. } => {}
        }
    }

    fn key_versions(&self) -> Vec<(u64, u64)> {
        self.store.scan(..).map(|(k, v)| (k, v.value.as_u64().unwrap_or(0))).collect()
    }
}

/// A scripted client that tracks the leader.
///
/// Each attempt is guarded by a short attempt timer: if the believed
/// leader does not answer (crashed, partitioned, or mid-election), the
/// client rotates to the next node and retries, up to the overall
/// operation timeout. This is what lets sessions survive failover.
pub struct PaxosClient {
    core: ClientCore,
    nodes: usize,
    believed_leader: NodeId,
}

/// Attempt-timer tag space (well below the client-core tag space).
const TAG_ATTEMPT_BASE: u64 = 1_000_000;
/// Per-attempt patience before rotating to another node.
const ATTEMPT_TIMEOUT: Duration = Duration::from_millis(250);

impl PaxosClient {
    /// Create a client session.
    pub fn new(session: u64, script: Vec<ScriptOp>, trace: SharedTrace, nodes: usize) -> Self {
        PaxosClient {
            core: ClientCore::new(session, script, trace, Duration::from_secs(4)),
            nodes,
            believed_leader: NodeId(0),
        }
    }

    fn send_op(&mut self, ctx: &mut Context<Msg>, op: IssueOp) {
        let msg = match op.kind {
            OpKind::Read => Msg::Request { op_id: op.op_id, key: op.key, value: None },
            OpKind::Write => Msg::Request {
                op_id: op.op_id,
                key: op.key,
                value: Some(op.value.expect("write without value")),
            },
        };
        ctx.send(self.believed_leader, msg);
        ctx.set_timer(ATTEMPT_TIMEOUT, TAG_ATTEMPT_BASE + op.op_id);
    }
}

impl Actor<Msg> for PaxosClient {
    fn role(&self) -> &'static str {
        "client"
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.core.start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if (TAG_ATTEMPT_BASE..TAG_ATTEMPT_BASE + 1_000_000).contains(&tag) {
            let op_id = tag - TAG_ATTEMPT_BASE;
            if self.core.pending_op() == Some(op_id) {
                // No answer: rotate and retry.
                self.believed_leader = NodeId((self.believed_leader.0 + 1) % self.nodes as u32);
                let target = self.believed_leader;
                if let Some(op) = self.core.retry(ctx, target) {
                    self.send_op(ctx, op);
                }
            }
            return;
        }
        let leader = self.believed_leader;
        match self.core.handle_timer(ctx, tag, leader) {
            TimerAction::Issue(op) => self.send_op(ctx, op),
            TimerAction::TimedOut(_) | TimerAction::None => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Response { op_id, ok, value, stamp, version_ts } => {
                self.believed_leader = from;
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome {
                        ok,
                        values: value.into_iter().collect(),
                        stamp: Some(stamp),
                        version_ts: version_ts.map(SimTime::from_micros),
                    },
                );
            }
            Msg::NotLeader { op_id, hint } => {
                if self.core.pending_op() != Some(op_id) {
                    return;
                }
                // Follow the hint (or round-robin) and retry.
                self.believed_leader = hint
                    .filter(|h| *h != self.believed_leader)
                    .unwrap_or(NodeId((self.believed_leader.0 + 1) % self.nodes as u32));
                let target = self.believed_leader;
                if let Some(op) = self.core.retry(ctx, target) {
                    self.send_op(ctx, op);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{optrace, FaultSchedule, LatencyModel, Sim, SimConfig};

    fn build(
        nodes: usize,
        clients: Vec<PaxosClient>,
        seed: u64,
        faults: FaultSchedule,
    ) -> Sim<Msg> {
        let cfg = PaxosConfig::new(nodes);
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(seed)
                .latency(LatencyModel::Constant(Duration::from_millis(5)))
                .faults(faults),
        );
        for _ in 0..nodes {
            sim.add_node(Box::new(PaxosNode::new(cfg)));
        }
        for c in clients {
            sim.add_node(Box::new(c));
        }
        sim
    }

    fn script(ops: &[(OpKind, Key)]) -> Vec<ScriptOp> {
        ops.iter().map(|&(kind, key)| ScriptOp { gap_us: 5_000, kind, key }).collect()
    }

    #[test]
    fn write_then_read_linearizes() {
        let trace = optrace::shared_trace();
        let c =
            PaxosClient::new(1, script(&[(OpKind::Write, 1), (OpKind::Read, 1)]), trace.clone(), 3);
        let mut sim = build(3, vec![c], 1, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(3));
        let t = trace.borrow();
        assert_eq!(t.len(), 2);
        assert!(t.records().iter().all(|r| r.ok));
        let read = &t.records()[1];
        assert_eq!(read.value_read, vec![ClientCore::unique_value(1, 1)]);
    }

    #[test]
    fn cross_client_read_sees_committed_write() {
        let trace = optrace::shared_trace();
        let writer = PaxosClient::new(1, script(&[(OpKind::Write, 5)]), trace.clone(), 3);
        let reader = PaxosClient::new(
            2,
            vec![ScriptOp { gap_us: 300_000, kind: OpKind::Read, key: 5 }],
            trace.clone(),
            3,
        );
        let mut sim = build(3, vec![writer, reader], 2, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(3));
        let t = trace.borrow();
        let read = t.records().iter().find(|r| r.kind == OpKind::Read).unwrap();
        assert!(read.ok);
        assert_eq!(read.value_read, vec![ClientCore::unique_value(1, 1)]);
    }

    #[test]
    fn not_leader_redirect_converges() {
        // The client starts by believing node 0 leads; even when a
        // different node wins the first election the request lands.
        let trace = optrace::shared_trace();
        let c = PaxosClient::new(1, script(&[(OpKind::Write, 2)]), trace.clone(), 5);
        let mut sim = build(5, vec![c], 7, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(3));
        let t = trace.borrow();
        assert!(t.records()[0].ok);
    }

    #[test]
    fn leader_crash_triggers_failover() {
        let trace = optrace::shared_trace();
        // Crash node 0 (the initial leader) at 500ms forever.
        let faults = FaultSchedule::none().crash(
            NodeId(0),
            SimTime::from_millis(500),
            SimTime::from_secs(600),
        );
        let c = PaxosClient::new(
            1,
            vec![
                ScriptOp { gap_us: 100_000, kind: OpKind::Write, key: 1 },
                ScriptOp { gap_us: 1_000_000, kind: OpKind::Write, key: 2 },
            ],
            trace.clone(),
            3,
        );
        let mut sim = build(3, vec![c], 3, faults);
        sim.run_until(SimTime::from_secs(10));
        let t = trace.borrow();
        assert_eq!(t.len(), 2);
        assert!(t.records()[0].ok, "pre-crash write commits");
        assert!(t.records()[1].ok, "post-crash write commits after failover");
        assert_ne!(t.records()[1].replica, NodeId(0), "new leader answered");
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let trace = optrace::shared_trace();
        // Cut node 0 (initial leader) off from 1 and 2 at t=1s. A client
        // stuck on node 0's side cannot commit.
        let faults = FaultSchedule::none().partition(
            vec![NodeId(0), NodeId(3)], // client node 3 is with the minority
            SimTime::from_secs(1),
            SimTime::from_secs(60),
        );
        let c = PaxosClient::new(
            1,
            vec![ScriptOp { gap_us: 2_000_000, kind: OpKind::Write, key: 1 }],
            trace.clone(),
            3,
        );
        let mut sim = build(3, vec![c], 4, faults);
        sim.run_until(SimTime::from_secs(8));
        let t = trace.borrow();
        assert_eq!(t.len(), 1);
        assert!(!t.records()[0].ok, "minority side must not commit writes");
    }

    #[test]
    fn unique_leader_per_ballot_in_steady_state() {
        // After convergence there is at most one leader.
        let mut sim = build(5, vec![], 5, FaultSchedule::none());
        sim.run_until(SimTime::from_secs(3));
        // Count leaders via committed heartbeat behaviour: we can't
        // downcast Box<dyn Actor>, so assert indirectly — a client write
        // must succeed exactly once (duplicate commits would double-apply,
        // caught by the linearizability checker in integration tests).
        assert!(sim.delivered_messages > 0);
    }
}
