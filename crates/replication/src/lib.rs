//! # replication — the protocols the tutorial taxonomizes
//!
//! One module per point in the design space, each implemented as
//! deterministic `simnet` actors (replicas *and* clients are state
//! machines):
//!
//! | Module | Scheme | Where writes go | Propagation | Consistency |
//! |---|---|---|---|---|
//! | [`eventual`] | multi-master | any replica | async broadcast + anti-entropy gossip | eventual (LWW or siblings), optional session guarantees |
//! | [`quorum`] | multi-master | coordinator fans out to N | sync to W, async rest | tunable: R+W>N fresh, partial quorums stale (PBS) |
//! | [`primary`] | primary copy | the primary | sync (acks) or async (log shipping) | strong at primary, bounded-stale at backups |
//! | [`paxos`] | consensus log | elected leader | Multi-Paxos majority commit | linearizable ops |
//! | [`causal`] | multi-master | any replica | dependency-delayed broadcast | causal+ (COPS-style) |
//!
//! The protocols are built from the shared layers in [`kernel`]:
//! durability ([`kernel::durability`]), propagation mechanics
//! ([`kernel::propagation`]), and conflict resolution
//! ([`kernel::resolution`]). A [`kernel::Composition`] names one point
//! of the durability × propagation × resolution space; the five legacy
//! schemes are canonical compositions, and new compositions reuse the
//! same layers without a new protocol monolith.
//!
//! Shared client plumbing lives in [`common`]: scripted sessions that
//! issue reads/writes, time out, and record every operation into the
//! `simnet` op-trace that the `consistency` crate's checkers consume.
#![deny(missing_docs)]

pub mod causal;
pub mod common;
pub mod eventual;
pub mod kernel;
pub mod paxos;
pub mod primary;
pub mod quorum;
pub mod sharded;

pub use common::{ClientCore, Guarantees, OpOutcome, ScriptOp};
pub use kernel::Composition;
pub use sharded::ShardedConfig;
