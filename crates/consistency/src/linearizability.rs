//! A Wing & Gong linearizability checker for single-key registers.
//!
//! Given a history of timed read/write intervals over one register, the
//! checker searches for a legal linearization: a total order of operations
//! that (a) respects real-time order (an op that completed before another
//! was invoked must come first) and (b) makes every read return the value
//! of the latest preceding write. Unique write values keep the register
//! state a single `Option<u64>`, and memoization on `(done-set, state)`
//! keeps the search tractable (Lowe's optimization).
//!
//! Cost is exponential in the worst case; histories are capped at 126 ops
//! per key (a `u128` mask), which is ample for the experiment suite's
//! per-key contention levels.

use simnet::{OpKind, OpTrace};
use std::collections::HashSet;

/// A register operation for the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegOp {
    /// Write of a unique value.
    Write(u64),
    /// Read returning a value (`None` = register unwritten/empty).
    Read(Option<u64>),
}

/// A timed operation interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Invocation time (µs).
    pub invoke: u64,
    /// Response time (µs).
    pub ret: u64,
    /// The operation.
    pub op: RegOp,
}

/// Why a trace failed the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinCheckError {
    /// A key's history admits no legal linearization.
    NotLinearizable {
        /// The offending key.
        key: u64,
    },
    /// A key had more than 126 operations (mask overflow).
    HistoryTooLarge {
        /// The offending key.
        key: u64,
        /// Its operation count.
        ops: usize,
    },
    /// The search exceeded its state budget before reaching a verdict
    /// (highly concurrent histories can be exponentially expensive).
    SearchBudgetExceeded {
        /// The offending key.
        key: u64,
    },
}

/// Default state budget for the search (~tens of ms of work).
pub const DEFAULT_SEARCH_BUDGET: u64 = 2_000_000;

/// Check one register history for linearizability with the default
/// search budget.
///
/// # Panics
/// If the history exceeds 126 ops or the search budget runs out; use
/// [`check_linearizable_register_bounded`] for a non-panicking variant.
pub fn check_linearizable_register(history: &[Interval]) -> bool {
    check_linearizable_register_bounded(history, DEFAULT_SEARCH_BUDGET)
        .expect("linearizability search budget exceeded")
}

/// Check one register history; `None` if the state budget ran out before
/// a verdict was reached.
pub fn check_linearizable_register_bounded(history: &[Interval], budget: u64) -> Option<bool> {
    let n = history.len();
    assert!(n <= 126, "history too large for the bitmask search");
    if n == 0 {
        return Some(true);
    }
    let full: u128 = (1u128 << n) - 1;
    let mut visited: HashSet<(u128, Option<u64>)> = HashSet::new();
    let mut budget = budget;
    search(history, 0, None, full, &mut visited, &mut budget)
}

fn search(
    hist: &[Interval],
    done: u128,
    state: Option<u64>,
    full: u128,
    visited: &mut HashSet<(u128, Option<u64>)>,
    budget: &mut u64,
) -> Option<bool> {
    if done == full {
        return Some(true);
    }
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    if !visited.insert((done, state)) {
        return Some(false);
    }
    // An op may linearize next iff no *other* pending op returned before
    // this op was invoked (real-time order would be violated otherwise).
    let min_ret = hist
        .iter()
        .enumerate()
        .filter(|(i, _)| done & (1 << i) == 0)
        .map(|(_, iv)| iv.ret)
        .min()
        .expect("pending op exists");
    for (i, iv) in hist.iter().enumerate() {
        if done & (1 << i) != 0 || iv.invoke > min_ret {
            continue;
        }
        match iv.op {
            RegOp::Write(v) => {
                match search(hist, done | (1 << i), Some(v), full, visited, budget) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
            }
            RegOp::Read(v) => {
                if v == state {
                    match search(hist, done | (1 << i), state, full, visited, budget) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => return None,
                    }
                }
            }
        }
    }
    Some(false)
}

/// Check a whole trace: each key's successful ops form one register
/// history. Reads that returned multiple siblings fail the check (a
/// register has one value); protocols exposing siblings are not
/// linearizable by construction.
pub fn check_trace_linearizable(trace: &OpTrace) -> Result<(), LinCheckError> {
    let mut keys: Vec<u64> = trace.successful().map(|r| r.key).collect();
    keys.sort_unstable();
    keys.dedup();
    for key in keys {
        let mut history = Vec::new();
        let mut multivalue = false;
        for r in trace.successful().filter(|r| r.key == key) {
            let op = match r.kind {
                OpKind::Write => RegOp::Write(r.value_written.expect("write has a value")),
                OpKind::Read => {
                    if r.value_read.len() > 1 {
                        multivalue = true;
                    }
                    RegOp::Read(r.value_read.first().copied())
                }
            };
            history.push(Interval {
                invoke: r.invoked.as_micros(),
                ret: r.completed.as_micros(),
                op,
            });
        }
        if multivalue {
            return Err(LinCheckError::NotLinearizable { key });
        }
        if history.len() > 126 {
            return Err(LinCheckError::HistoryTooLarge { key, ops: history.len() });
        }
        match check_linearizable_register_bounded(&history, DEFAULT_SEARCH_BUDGET) {
            Some(true) => {}
            Some(false) => return Err(LinCheckError::NotLinearizable { key }),
            None => return Err(LinCheckError::SearchBudgetExceeded { key }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(invoke: u64, ret: u64, v: u64) -> Interval {
        Interval { invoke, ret, op: RegOp::Write(v) }
    }

    fn r(invoke: u64, ret: u64, v: Option<u64>) -> Interval {
        Interval { invoke, ret, op: RegOp::Read(v) }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_linearizable_register(&[]));
    }

    #[test]
    fn sequential_history_is_linearizable() {
        assert!(check_linearizable_register(&[
            w(0, 10, 1),
            r(20, 30, Some(1)),
            w(40, 50, 2),
            r(60, 70, Some(2)),
        ]));
    }

    #[test]
    fn read_of_overwritten_value_after_completion_fails() {
        // w(1) completes, then w(2) completes, then a read returns 1.
        assert!(!check_linearizable_register(&[w(0, 10, 1), w(20, 30, 2), r(40, 50, Some(1)),]));
    }

    #[test]
    fn concurrent_write_allows_either_read_value() {
        // w(2) overlaps the read: the read may see 1 or 2.
        let base = [w(0, 10, 1), w(20, 60, 2)];
        let mut h1 = base.to_vec();
        h1.push(r(30, 40, Some(1)));
        assert!(check_linearizable_register(&h1));
        let mut h2 = base.to_vec();
        h2.push(r(30, 40, Some(2)));
        assert!(check_linearizable_register(&h2));
    }

    #[test]
    fn new_old_inversion_fails() {
        // Two sequential reads during no writes: second read going
        // backwards is the classic non-linearizable inversion.
        assert!(!check_linearizable_register(&[
            w(0, 10, 1),
            w(15, 25, 2),
            r(30, 40, Some(2)),
            r(50, 60, Some(1)),
        ]));
    }

    #[test]
    fn read_empty_before_any_write_ok() {
        assert!(check_linearizable_register(&[r(0, 5, None), w(10, 20, 1)]));
        // But reading empty after a completed write fails.
        assert!(!check_linearizable_register(&[w(0, 5, 1), r(10, 20, None)]));
    }

    #[test]
    fn overlapping_writes_any_final_order() {
        // Two overlapping writes then a read of either value is fine.
        assert!(check_linearizable_register(&[w(0, 100, 1), w(10, 90, 2), r(200, 210, Some(1)),]));
        assert!(check_linearizable_register(&[w(0, 100, 1), w(10, 90, 2), r(200, 210, Some(2)),]));
        // But both reads disagreeing sequentially is not.
        assert!(!check_linearizable_register(&[
            w(0, 100, 1),
            w(10, 90, 2),
            r(200, 210, Some(1)),
            r(220, 230, Some(2)),
            r(240, 250, Some(1)),
        ]));
    }

    #[test]
    fn single_op_histories_are_linearizable() {
        // A lone write, a lone read of nothing, and a lone read of an
        // unwritten value: the first two linearize trivially; the third
        // has no producing write, so it must fail.
        assert!(check_linearizable_register(&[w(0, 10, 1)]));
        assert!(check_linearizable_register(&[r(0, 10, None)]));
        assert!(!check_linearizable_register(&[r(0, 10, Some(7))]));
    }

    #[test]
    fn identical_timestamp_concurrent_writes() {
        // Two writes sharing the exact same interval: either order is
        // legal, so a subsequent read may return either value — but a
        // read of a third value may not.
        let base = [w(0, 10, 1), w(0, 10, 2)];
        for v in [1u64, 2] {
            let mut h = base.to_vec();
            h.push(r(20, 30, Some(v)));
            assert!(check_linearizable_register(&h), "read of {v} must linearize");
        }
        let mut h = base.to_vec();
        h.push(r(20, 30, Some(3)));
        assert!(!check_linearizable_register(&h));
        // Reads with identical timestamps too: both orders of two
        // same-interval reads returning the two values are legal while
        // the writes are still in flight.
        assert!(check_linearizable_register(&[
            w(0, 100, 1),
            w(0, 100, 2),
            r(50, 60, Some(1)),
            r(50, 60, Some(2)),
        ]));
    }

    #[test]
    fn zero_duration_ops_respect_real_time_order() {
        // Instantaneous ops (invoke == ret) still order by real time:
        // a zero-width read strictly after a zero-width write must see it.
        assert!(check_linearizable_register(&[w(10, 10, 1), r(20, 20, Some(1))]));
        assert!(!check_linearizable_register(&[w(10, 10, 1), r(20, 20, None)]));
        // At the *same* instant they count as concurrent (neither returned
        // strictly before the other was invoked): both outcomes legal.
        assert!(check_linearizable_register(&[w(10, 10, 1), r(10, 10, Some(1))]));
        assert!(check_linearizable_register(&[w(10, 10, 1), r(10, 10, None)]));
    }

    #[test]
    fn bounded_search_exhausts_budget_to_none() {
        // A pile of fully-concurrent writes forces exponential search;
        // with a tiny budget the checker must give up, not lie.
        let h: Vec<Interval> = (0..20).map(|i| w(0, 1000, i)).collect();
        assert_eq!(check_linearizable_register_bounded(&h, 5), None);
        // Zero budget gives up immediately on any non-empty history...
        assert_eq!(check_linearizable_register_bounded(&[w(0, 1, 1)], 0), None);
        // ...but the empty history needs no search at all.
        assert_eq!(check_linearizable_register_bounded(&[], 0), Some(true));
    }

    #[test]
    fn oversized_history_is_rejected_not_searched() {
        use simnet::{NodeId, OpRecord, SimTime};
        let mut t = OpTrace::new();
        for i in 0..127u64 {
            t.push(OpRecord {
                session: 1,
                op_id: i,
                key: 9,
                kind: OpKind::Write,
                value_written: Some(i),
                value_read: vec![],
                invoked: SimTime::from_micros(i * 10),
                completed: SimTime::from_micros(i * 10 + 5),
                replica: NodeId(0),
                ok: true,
                version_ts: None,
                stamp: None,
            });
        }
        assert_eq!(
            check_trace_linearizable(&t),
            Err(LinCheckError::HistoryTooLarge { key: 9, ops: 127 })
        );
    }

    #[test]
    fn trace_level_check_partitions_by_key() {
        use simnet::{NodeId, OpRecord, SimTime};
        let mut t = OpTrace::new();
        let mk = |key: u64, kind: OpKind, val: u64, inv: u64, comp: u64, read: Vec<u64>| OpRecord {
            session: 1,
            op_id: inv,
            key,
            kind,
            value_written: (kind == OpKind::Write).then_some(val),
            value_read: read,
            invoked: SimTime::from_micros(inv),
            completed: SimTime::from_micros(comp),
            replica: NodeId(0),
            ok: true,
            version_ts: None,
            stamp: None,
        };
        // Key 1: fine. Key 2: stale read -> not linearizable.
        t.push(mk(1, OpKind::Write, 11, 0, 10, vec![]));
        t.push(mk(1, OpKind::Read, 0, 20, 30, vec![11]));
        t.push(mk(2, OpKind::Write, 21, 0, 10, vec![]));
        t.push(mk(2, OpKind::Write, 22, 20, 30, vec![]));
        t.push(mk(2, OpKind::Read, 0, 40, 50, vec![21]));
        assert_eq!(check_trace_linearizable(&t), Err(LinCheckError::NotLinearizable { key: 2 }));
    }
}
