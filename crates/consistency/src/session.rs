//! Session-guarantee checking (Terry et al.'s four guarantees).
//!
//! Operationalization over the recorded trace, using the Lamport
//! `(counter, actor)` stamps replicas assign to versions (the Lamport
//! total order extends the version installation order):
//!
//! * **Read-your-writes** — after a session writes key `k` with stamp `w`,
//!   every later read of `k` by that session must return a stamp `>= w`.
//! * **Monotonic reads** — per key, a session's read stamps never
//!   decrease.
//! * **Monotonic writes** — a session's write stamps are increasing in
//!   issue order (the install order of its writes respects program order).
//! * **Writes-follow-reads** — a session's write stamp exceeds the stamps
//!   of everything the session read before it.
//!
//! Reads that return nothing (key absent) have no stamp: they violate any
//! floor the session holds for that key (RYW/MR) since an installed
//! version disappeared from the session's view.
//!
//! Only successful operations participate. Operations are examined in
//! per-session issue order (`op_id`), which equals completion order for
//! the closed-loop clients used in the experiments.

use serde::{Deserialize, Serialize};
use simnet::{OpKind, OpTrace};
use std::collections::BTreeMap;

/// Violation counts for one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Read-your-writes: checks performed / violations found.
    pub ryw_checked: u64,
    /// RYW violations.
    pub ryw_violations: u64,
    /// Monotonic-reads checks.
    pub mr_checked: u64,
    /// MR violations.
    pub mr_violations: u64,
    /// Monotonic-writes checks.
    pub mw_checked: u64,
    /// MW violations.
    pub mw_violations: u64,
    /// Writes-follow-reads checks.
    pub wfr_checked: u64,
    /// WFR violations.
    pub wfr_violations: u64,
}

impl SessionReport {
    /// Violation rate for a `(checked, violations)` pair, 0 when unchecked.
    fn rate(checked: u64, violations: u64) -> f64 {
        if checked == 0 {
            0.0
        } else {
            violations as f64 / checked as f64
        }
    }

    /// RYW violation rate.
    pub fn ryw_rate(&self) -> f64 {
        Self::rate(self.ryw_checked, self.ryw_violations)
    }

    /// MR violation rate.
    pub fn mr_rate(&self) -> f64 {
        Self::rate(self.mr_checked, self.mr_violations)
    }

    /// MW violation rate.
    pub fn mw_rate(&self) -> f64 {
        Self::rate(self.mw_checked, self.mw_violations)
    }

    /// WFR violation rate.
    pub fn wfr_rate(&self) -> f64 {
        Self::rate(self.wfr_checked, self.wfr_violations)
    }

    /// True if no guarantee was ever violated.
    pub fn clean(&self) -> bool {
        self.ryw_violations + self.mr_violations + self.mw_violations + self.wfr_violations == 0
    }
}

/// Check all four session guarantees over a trace.
pub fn check_session_guarantees(trace: &OpTrace) -> SessionReport {
    let mut report = SessionReport::default();
    for session in trace.sessions() {
        let mut ops: Vec<_> = trace.session(session).filter(|r| r.ok).collect();
        ops.sort_by_key(|r| r.op_id);

        let mut write_floor: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // key -> own write stamp
        let mut read_floor: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // key -> last read stamp
        let mut last_write_stamp: Option<(u64, u64)> = None;
        let mut max_read_stamp: Option<(u64, u64)> = None;

        for op in ops {
            match op.kind {
                OpKind::Read => {
                    // RYW.
                    if let Some(&w) = write_floor.get(&op.key) {
                        report.ryw_checked += 1;
                        if op.stamp.map(|s| s < w).unwrap_or(true) {
                            report.ryw_violations += 1;
                        }
                    }
                    // MR.
                    if let Some(&f) = read_floor.get(&op.key) {
                        report.mr_checked += 1;
                        if op.stamp.map(|s| s < f).unwrap_or(true) {
                            report.mr_violations += 1;
                        }
                    }
                    if let Some(s) = op.stamp {
                        let f = read_floor.entry(op.key).or_insert(s);
                        *f = (*f).max(s);
                        max_read_stamp = Some(max_read_stamp.map_or(s, |m: (u64, u64)| m.max(s)));
                    }
                }
                OpKind::Write => {
                    let Some(s) = op.stamp else { continue };
                    // MW.
                    if let Some(prev) = last_write_stamp {
                        report.mw_checked += 1;
                        if s < prev {
                            report.mw_violations += 1;
                        }
                    }
                    // WFR.
                    if let Some(r) = max_read_stamp {
                        report.wfr_checked += 1;
                        if s < r {
                            report.wfr_violations += 1;
                        }
                    }
                    last_write_stamp = Some(last_write_stamp.map_or(s, |p: (u64, u64)| p.max(s)));
                    let f = write_floor.entry(op.key).or_insert(s);
                    *f = (*f).max(s);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, OpRecord, SimTime};

    fn rec(
        session: u64,
        op_id: u64,
        key: u64,
        kind: OpKind,
        stamp: Option<(u64, u64)>,
        ok: bool,
    ) -> OpRecord {
        OpRecord {
            session,
            op_id,
            key,
            kind,
            value_written: (kind == OpKind::Write).then_some(op_id),
            value_read: if kind == OpKind::Read && stamp.is_some() { vec![1] } else { vec![] },
            invoked: SimTime::from_millis(op_id),
            completed: SimTime::from_millis(op_id + 1),
            replica: NodeId(0),
            ok,
            version_ts: None,
            stamp,
        }
    }

    #[test]
    fn clean_session_reports_clean() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Write, Some((1, 0)), true));
        t.push(rec(1, 2, 5, OpKind::Read, Some((1, 0)), true));
        t.push(rec(1, 3, 5, OpKind::Read, Some((2, 0)), true));
        let r = check_session_guarantees(&t);
        assert!(r.clean());
        assert_eq!(r.ryw_checked, 2);
        assert_eq!(r.mr_checked, 1);
    }

    #[test]
    fn ryw_violation_detected() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Write, Some((10, 0)), true));
        t.push(rec(1, 2, 5, OpKind::Read, Some((4, 0)), true)); // older version
        let r = check_session_guarantees(&t);
        assert_eq!(r.ryw_violations, 1);
        assert!((r.ryw_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_read_after_write_is_ryw_violation() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Write, Some((10, 0)), true));
        t.push(rec(1, 2, 5, OpKind::Read, None, true)); // key vanished
        let r = check_session_guarantees(&t);
        assert_eq!(r.ryw_violations, 1);
    }

    #[test]
    fn mr_violation_detected() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Read, Some((10, 0)), true));
        t.push(rec(1, 2, 5, OpKind::Read, Some((3, 0)), true)); // went backwards
        let r = check_session_guarantees(&t);
        assert_eq!(r.mr_violations, 1);
        assert_eq!(r.ryw_checked, 0, "no write: RYW not in play");
    }

    #[test]
    fn mw_violation_detected() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Write, Some((10, 0)), true));
        t.push(rec(1, 2, 6, OpKind::Write, Some((4, 0)), true)); // ordered before
        let r = check_session_guarantees(&t);
        assert_eq!(r.mw_checked, 1);
        assert_eq!(r.mw_violations, 1);
    }

    #[test]
    fn wfr_violation_detected() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Read, Some((10, 0)), true));
        t.push(rec(1, 2, 6, OpKind::Write, Some((4, 0)), true)); // before the read
        let r = check_session_guarantees(&t);
        assert_eq!(r.wfr_checked, 1);
        assert_eq!(r.wfr_violations, 1);
    }

    #[test]
    fn sessions_are_independent() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Write, Some((10, 0)), true));
        // Session 2 reading an old version of key 5 is NOT session 1's
        // RYW problem.
        t.push(rec(2, 1, 5, OpKind::Read, Some((3, 0)), true));
        let r = check_session_guarantees(&t);
        assert_eq!(r.ryw_checked, 0);
        assert!(r.clean());
    }

    #[test]
    fn failed_ops_are_ignored() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Write, Some((10, 0)), false)); // failed
        t.push(rec(1, 2, 5, OpKind::Read, Some((3, 0)), true));
        let r = check_session_guarantees(&t);
        assert_eq!(r.ryw_checked, 0);
        assert!(r.clean());
    }

    #[test]
    fn reads_of_different_keys_do_not_interact_for_mr() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 5, OpKind::Read, Some((10, 0)), true));
        t.push(rec(1, 2, 6, OpKind::Read, Some((3, 0)), true)); // other key
        let r = check_session_guarantees(&t);
        assert_eq!(r.mr_checked, 0);
        assert!(r.clean());
    }
}
