//! Attribute consistency violations to network conditions.
//!
//! The checkers in this crate report *that* a guarantee was violated and
//! *when*; this module consumes the structured simulation event log
//! ([`obs::TracedEvent`], see `docs/METRICS.md`) to explain *why*: was a
//! partition active at the violation time, how many messages were being
//! dropped around it, how long had it been since the victim's last
//! anti-entropy round, and which nodes were down.
//!
//! The event log is the same one exported as JSONL via `--trace-out`, so
//! attribution works both in-process (on [`obs::Recorder::events`]) and
//! offline on a parsed trace.
//!
//! With causal tracing enabled the log also carries span open/close
//! pairs, and attribution walks them: [`spans_at`] lists the operation
//! steps in flight at the violation instant, and [`causal_chain`]
//! follows a span's parent links up to its trace root — the exact path
//! the stale operation took through the system. `tracequery explain`
//! (crate `obs-tools`) is the offline front-end for both.

use obs::{EventKind, TracedEvent};
use serde::{Deserialize, Serialize};

/// Network conditions around one violation instant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationContext {
    /// The violation time being explained (simulation µs).
    pub t_us: u64,
    /// Was a partition active at `t_us`?
    pub in_partition: bool,
    /// Messages dropped in the `window_us` before `t_us`, by reason name
    /// (`"partition"`, `"loss"`, `"crashed_destination"`).
    pub drops_by_reason: Vec<(String, u64)>,
    /// Nodes that crashed before `t_us` and had not recovered by it.
    pub crashed_nodes: Vec<u64>,
    /// Time since the most recent anti-entropy round anywhere in the
    /// cluster (µs), if any round happened before `t_us`.
    pub since_anti_entropy_us: Option<u64>,
    /// Operation steps (spans) in flight at `t_us`: opened at or before
    /// it and not yet closed. Empty when the trace was recorded without
    /// span events.
    pub in_flight_spans: Vec<SpanAt>,
}

/// One operation step (span) as seen by the attribution walk: its
/// identity in the span tree plus its virtual-time bounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanAt {
    /// The trace this span belongs to.
    pub trace: u64,
    /// The span id.
    pub span: u64,
    /// Parent span id (0 for a trace root).
    pub parent: u64,
    /// The node the step ran on.
    pub node: u64,
    /// Static step name (e.g. `op_read`, `quorum_write`).
    pub name: String,
    /// When the span opened (simulation µs).
    pub open_t_us: u64,
    /// When the span closed, if the log contains its close event.
    pub close_t_us: Option<u64>,
    /// Close status name (`ok`, `failed`, `abandoned`), if closed.
    pub status: Option<String>,
}

/// Collect every span in the log, in open order, with close times and
/// statuses filled in from matching [`EventKind::SpanClose`] events.
/// The offline trace tools build span trees from this.
pub fn all_spans(events: &[TracedEvent]) -> Vec<SpanAt> {
    let mut spans: Vec<SpanAt> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::SpanOpen { trace, span, parent, node, name } => spans.push(SpanAt {
                trace: *trace,
                span: *span,
                parent: *parent,
                node: *node,
                name: (*name).to_string(),
                open_t_us: ev.t_us,
                close_t_us: None,
                status: None,
            }),
            EventKind::SpanClose { span, status, .. } => {
                if let Some(s) = spans.iter_mut().rev().find(|s| s.span == *span) {
                    s.close_t_us = Some(ev.t_us);
                    s.status = Some(status.name().to_string());
                }
            }
            _ => {}
        }
    }
    spans
}

/// The spans in flight at `t_us`: opened at or before it and either
/// never closed or closed strictly after it. Returned in open order
/// (which is also span-id order, since ids are allocated serially).
pub fn spans_at(events: &[TracedEvent], t_us: u64) -> Vec<SpanAt> {
    all_spans(events)
        .into_iter()
        .filter(|s| s.open_t_us <= t_us && s.close_t_us.is_none_or(|c| c > t_us))
        .collect()
}

/// The causal chain of span `span_id`: the span itself followed by its
/// ancestors up to the trace root (parent links from the span-open
/// events). Empty if the span is not in the log.
pub fn causal_chain(events: &[TracedEvent], span_id: u64) -> Vec<SpanAt> {
    let spans = all_spans(events);
    let mut chain = Vec::new();
    let mut cursor = span_id;
    while cursor != 0 {
        match spans.iter().find(|s| s.span == cursor) {
            Some(s) => {
                cursor = s.parent;
                chain.push(s.clone());
            }
            None => break,
        }
    }
    chain
}

impl ViolationContext {
    /// Total drops in the window, all reasons combined.
    pub fn total_drops(&self) -> u64 {
        self.drops_by_reason.iter().map(|(_, n)| n).sum()
    }

    /// One-line human-readable verdict, most-likely cause first.
    pub fn verdict(&self) -> String {
        if self.in_partition {
            "partition active at violation time".to_string()
        } else if !self.crashed_nodes.is_empty() {
            format!("{} node(s) down at violation time", self.crashed_nodes.len())
        } else if self.total_drops() > 0 {
            format!("{} message(s) dropped in the window before", self.total_drops())
        } else {
            "no fault active: replication lag alone".to_string()
        }
    }
}

/// Explain the network conditions at violation time `t_us`, looking back
/// `window_us` for message drops. Events must be in recording order
/// (ascending `seq`), which [`obs::Recorder::events`] guarantees.
pub fn attribute_violation(events: &[TracedEvent], t_us: u64, window_us: u64) -> ViolationContext {
    let mut open_partitions: u64 = 0;
    let mut crashed: Vec<u64> = Vec::new();
    let mut last_ae: Option<u64> = None;
    let mut drops: Vec<(String, u64)> = Vec::new();
    let window_start = t_us.saturating_sub(window_us);
    for ev in events.iter().take_while(|e| e.t_us <= t_us) {
        match &ev.kind {
            EventKind::PartitionStart { .. } => open_partitions += 1,
            EventKind::PartitionHeal => open_partitions = open_partitions.saturating_sub(1),
            EventKind::Crash { node } if !crashed.contains(node) => crashed.push(*node),
            EventKind::Recover { node } => crashed.retain(|n| n != node),
            EventKind::AntiEntropyRound { .. } => last_ae = Some(ev.t_us),
            EventKind::MessageDropped { reason, .. } if ev.t_us >= window_start => {
                let name = reason.name();
                match drops.iter_mut().find(|(r, _)| r == name) {
                    Some((_, n)) => *n += 1,
                    None => drops.push((name.to_string(), 1)),
                }
            }
            _ => {}
        }
    }
    ViolationContext {
        t_us,
        in_partition: open_partitions > 0,
        drops_by_reason: drops,
        crashed_nodes: crashed,
        since_anti_entropy_us: last_ae.map(|ae| t_us.saturating_sub(ae)),
        in_flight_spans: spans_at(events, t_us),
    }
}

/// Attribute a batch of violation times and summarize: how many happened
/// under a partition, with a node down, near drops, or with no fault at
/// all (pure replication lag).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributionSummary {
    /// Violations with a partition active.
    pub during_partition: u64,
    /// Violations with at least one node down (and no partition).
    pub during_crash: u64,
    /// Violations preceded by message drops (no partition, no crash).
    pub near_drops: u64,
    /// Violations with no fault in sight.
    pub unattributed: u64,
}

/// Classify each violation time with [`attribute_violation`] and count
/// the buckets.
pub fn summarize_attributions(
    events: &[TracedEvent],
    violation_times_us: &[u64],
    window_us: u64,
) -> AttributionSummary {
    let mut s = AttributionSummary::default();
    for &t in violation_times_us {
        let ctx = attribute_violation(events, t, window_us);
        if ctx.in_partition {
            s.during_partition += 1;
        } else if !ctx.crashed_nodes.is_empty() {
            s.during_crash += 1;
        } else if ctx.total_drops() > 0 {
            s.near_drops += 1;
        } else {
            s.unattributed += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::DropReason;

    fn ev(seq: u64, t_us: u64, kind: EventKind) -> TracedEvent {
        TracedEvent { seq, t_us, kind }
    }

    #[test]
    fn partition_interval_is_attributed() {
        let events = vec![
            ev(0, 100, EventKind::PartitionStart { island: vec![0] }),
            ev(1, 500, EventKind::PartitionHeal),
        ];
        assert!(attribute_violation(&events, 300, 1_000).in_partition);
        assert!(!attribute_violation(&events, 600, 0).in_partition);
        assert!(!attribute_violation(&events, 50, 0).in_partition);
    }

    #[test]
    fn drops_window_and_crash_tracking() {
        let events = vec![
            ev(0, 100, EventKind::Crash { node: 2 }),
            ev(
                1,
                200,
                EventKind::MessageDropped {
                    from: 0,
                    to: 2,
                    reason: DropReason::CrashedDestination,
                    trace: 0,
                    span: 0,
                },
            ),
            ev(2, 300, EventKind::Recover { node: 2 }),
            ev(
                3,
                400,
                EventKind::MessageDropped {
                    from: 1,
                    to: 0,
                    reason: DropReason::Loss,
                    trace: 0,
                    span: 0,
                },
            ),
        ];
        let ctx = attribute_violation(&events, 250, 100);
        assert_eq!(ctx.crashed_nodes, vec![2]);
        assert_eq!(ctx.total_drops(), 1);
        let ctx = attribute_violation(&events, 450, 100);
        assert!(ctx.crashed_nodes.is_empty());
        assert_eq!(ctx.drops_by_reason, vec![("loss".to_string(), 1)]);
        assert!(ctx.verdict().contains("dropped"));
    }

    #[test]
    fn spans_at_and_causal_chain_walk_the_tree() {
        use obs::SpanStatus;
        // Trace 1: root span 1 (node 9) -> child span 2 (node 3).
        let events = vec![
            ev(0, 100, EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 9, name: "op" }),
            ev(
                1,
                200,
                EventKind::SpanOpen { trace: 1, span: 2, parent: 1, node: 3, name: "replica" },
            ),
            ev(2, 300, EventKind::SpanClose { trace: 1, span: 2, node: 3, status: SpanStatus::Ok }),
            ev(3, 500, EventKind::SpanClose { trace: 1, span: 1, node: 9, status: SpanStatus::Ok }),
        ];
        // At t=250 both spans are in flight; at t=400 only the root.
        let at = spans_at(&events, 250);
        assert_eq!(at.iter().map(|s| s.span).collect::<Vec<_>>(), vec![1, 2]);
        let at = spans_at(&events, 400);
        assert_eq!(at.iter().map(|s| s.span).collect::<Vec<_>>(), vec![1]);
        // The chain from the child reaches the root via the parent link.
        let chain = causal_chain(&events, 2);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].name, "replica");
        assert_eq!(chain[0].close_t_us, Some(300));
        assert_eq!(chain[1].name, "op");
        assert_eq!(chain[1].parent, 0);
        // attribute_violation carries the in-flight spans along.
        let ctx = attribute_violation(&events, 250, 0);
        assert_eq!(ctx.in_flight_spans.len(), 2);
    }

    #[test]
    fn summary_buckets_violations() {
        let events = vec![
            ev(0, 100, EventKind::PartitionStart { island: vec![0, 1] }),
            ev(1, 200, EventKind::PartitionHeal),
            ev(2, 900, EventKind::AntiEntropyRound { node: 0, fanout: 1 }),
        ];
        let s = summarize_attributions(&events, &[150, 1_000], 50);
        assert_eq!(s.during_partition, 1);
        assert_eq!(s.unattributed, 1);
        let ctx = attribute_violation(&events, 1_000, 50);
        assert_eq!(ctx.since_anti_entropy_us, Some(100));
    }
}
