//! Attribute consistency violations to network conditions.
//!
//! The checkers in this crate report *that* a guarantee was violated and
//! *when*; this module consumes the structured simulation event log
//! ([`obs::TracedEvent`], see `docs/METRICS.md`) to explain *why*: was a
//! partition active at the violation time, how many messages were being
//! dropped around it, how long had it been since the victim's last
//! anti-entropy round, and which nodes were down.
//!
//! The event log is the same one exported as JSONL via `--trace-out`, so
//! attribution works both in-process (on [`obs::Recorder::events`]) and
//! offline on a parsed trace.
//!
//! With causal tracing enabled the log also carries span open/close
//! pairs, and attribution walks them: [`spans_at`] lists the operation
//! steps in flight at the violation instant, and [`causal_chain`]
//! follows a span's parent links up to its trace root — the exact path
//! the stale operation took through the system. `tracequery explain`
//! (crate `obs-tools`) is the offline front-end for both.

use obs::{EventKind, TracedEvent};
use serde::{Deserialize, Serialize};

/// Network conditions around one violation instant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationContext {
    /// The violation time being explained (simulation µs).
    pub t_us: u64,
    /// Was a partition active at `t_us`?
    pub in_partition: bool,
    /// Messages dropped in the `window_us` before `t_us`, by reason name
    /// (`"partition"`, `"loss"`, `"crashed_destination"`).
    pub drops_by_reason: Vec<(String, u64)>,
    /// Nodes that crashed before `t_us` and had not recovered by it.
    pub crashed_nodes: Vec<u64>,
    /// Time since the most recent anti-entropy round anywhere in the
    /// cluster (µs), if any round happened before `t_us`.
    pub since_anti_entropy_us: Option<u64>,
    /// Operation steps (spans) in flight at `t_us`: opened at or before
    /// it and not yet closed. Empty when the trace was recorded without
    /// span events.
    pub in_flight_spans: Vec<SpanAt>,
}

/// One operation step (span) as seen by the attribution walk: its
/// identity in the span tree plus its virtual-time bounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanAt {
    /// The trace this span belongs to.
    pub trace: u64,
    /// The span id.
    pub span: u64,
    /// Parent span id (0 for a trace root).
    pub parent: u64,
    /// The node the step ran on.
    pub node: u64,
    /// Static step name (e.g. `op_read`, `quorum_write`).
    pub name: String,
    /// When the span opened (simulation µs).
    pub open_t_us: u64,
    /// When the span closed, if the log contains its close event.
    pub close_t_us: Option<u64>,
    /// Close status name (`ok`, `failed`, `abandoned`), if closed.
    pub status: Option<String>,
}

/// Collect every span in the log, in open order, with close times and
/// statuses filled in from matching [`EventKind::SpanClose`] events.
/// The offline trace tools build span trees from this.
pub fn all_spans(events: &[TracedEvent]) -> Vec<SpanAt> {
    let mut spans: Vec<SpanAt> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::SpanOpen { trace, span, parent, node, name } => spans.push(SpanAt {
                trace: *trace,
                span: *span,
                parent: *parent,
                node: *node,
                name: (*name).to_string(),
                open_t_us: ev.t_us,
                close_t_us: None,
                status: None,
            }),
            EventKind::SpanClose { span, status, .. } => {
                if let Some(s) = spans.iter_mut().rev().find(|s| s.span == *span) {
                    s.close_t_us = Some(ev.t_us);
                    s.status = Some(status.name().to_string());
                }
            }
            _ => {}
        }
    }
    spans
}

/// The spans in flight at `t_us`: opened at or before it and either
/// never closed or closed strictly after it. Returned in open order
/// (which is also span-id order, since ids are allocated serially).
pub fn spans_at(events: &[TracedEvent], t_us: u64) -> Vec<SpanAt> {
    all_spans(events)
        .into_iter()
        .filter(|s| s.open_t_us <= t_us && s.close_t_us.is_none_or(|c| c > t_us))
        .collect()
}

/// The causal chain of span `span_id`: the span itself followed by its
/// ancestors up to the trace root (parent links from the span-open
/// events). Empty if the span is not in the log.
pub fn causal_chain(events: &[TracedEvent], span_id: u64) -> Vec<SpanAt> {
    let spans = all_spans(events);
    let mut chain = Vec::new();
    let mut cursor = span_id;
    while cursor != 0 {
        match spans.iter().find(|s| s.span == cursor) {
            Some(s) => {
                cursor = s.parent;
                chain.push(s.clone());
            }
            None => break,
        }
    }
    chain
}

/// One link in a windowed causal chain: either a resident ancestor span
/// or an explanation of why it is absent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainLink {
    /// The ancestor is resident in the window.
    Span(SpanAt),
    /// The ancestor was evicted at a watermark advance; the chain stops
    /// here (its own parent is unknowable without the full table).
    Evicted {
        /// The evicted span's id.
        span: u64,
        /// The retention window that aged it out (µs).
        window_us: u64,
    },
    /// The ancestor never appeared in the observed event stream.
    Missing {
        /// The unresolved span id.
        span: u64,
    },
}

impl ChainLink {
    /// One-line description for reports and `tracequery` output.
    pub fn describe(&self) -> String {
        match self {
            ChainLink::Span(s) => format!("span {} ({}) on node {}", s.span, s.name, s.node),
            ChainLink::Evicted { span, window_us } => {
                format!("span {span}: evicted, window={window_us}us")
            }
            ChainLink::Missing { span } => format!("span {span}: not in log"),
        }
    }
}

/// Bounded-memory span table for **online** attribution.
///
/// [`all_spans`]/[`causal_chain`] assume the full event log is resident,
/// which the streaming checkers (see [`crate::stream`]) deliberately
/// avoid. `SpanWindow` keeps only spans that are still open or closed
/// within the retention window behind the watermark; walking a causal
/// chain through an evicted ancestor yields an explicit
/// [`ChainLink::Evicted`] marker instead of a panic or a silently
/// truncated chain.
///
/// Span ids are allocated serially by the recorder, so an absent id at
/// or below the highest evicted id is reported as evicted; higher
/// absent ids were never observed.
#[derive(Debug, Default)]
pub struct SpanWindow {
    window_us: u64,
    spans: std::collections::BTreeMap<u64, SpanAt>,
    max_evicted_span: Option<u64>,
    evicted: u64,
}

impl SpanWindow {
    /// A span table retaining closed spans for `window_us` behind the
    /// watermark.
    pub fn new(window_us: u64) -> Self {
        SpanWindow { window_us, ..Default::default() }
    }

    /// Observe one event from the log; non-span events are ignored.
    pub fn observe(&mut self, ev: &TracedEvent) {
        match &ev.kind {
            EventKind::SpanOpen { trace, span, parent, node, name } => {
                self.spans.insert(
                    *span,
                    SpanAt {
                        trace: *trace,
                        span: *span,
                        parent: *parent,
                        node: *node,
                        name: (*name).to_string(),
                        open_t_us: ev.t_us,
                        close_t_us: None,
                        status: None,
                    },
                );
            }
            EventKind::SpanClose { span, status, .. } => {
                if let Some(s) = self.spans.get_mut(span) {
                    s.close_t_us = Some(ev.t_us);
                    s.status = Some(status.name().to_string());
                }
            }
            _ => {}
        }
    }

    /// Advance the watermark: spans closed before `t_us - window` are
    /// evicted (open spans are always retained — they may still close).
    /// Returns how many were dropped.
    pub fn advance(&mut self, t_us: u64) -> u64 {
        let cut = t_us.saturating_sub(self.window_us);
        let before = self.spans.len();
        let max_evicted = &mut self.max_evicted_span;
        self.spans.retain(|&id, s| {
            let keep = s.close_t_us.is_none_or(|c| c >= cut);
            if !keep {
                *max_evicted = Some(max_evicted.map_or(id, |m| m.max(id)));
            }
            keep
        });
        let dropped = (before - self.spans.len()) as u64;
        self.evicted += dropped;
        dropped
    }

    /// Total spans evicted so far.
    pub fn events_evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of spans currently resident.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans are resident.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The causal chain of `span_id` from the windowed state: the span
    /// and its ancestors up to the trace root, ending in an
    /// [`ChainLink::Evicted`] or [`ChainLink::Missing`] marker if the
    /// walk leaves the window. Equals [`causal_chain`] (wrapped in
    /// [`ChainLink::Span`]) whenever nothing on the path was evicted.
    pub fn causal_chain(&self, span_id: u64) -> Vec<ChainLink> {
        let mut chain = Vec::new();
        let mut cursor = span_id;
        while cursor != 0 {
            match self.spans.get(&cursor) {
                Some(s) => {
                    chain.push(ChainLink::Span(s.clone()));
                    cursor = s.parent;
                }
                None => {
                    if self.max_evicted_span.is_some_and(|m| cursor <= m) {
                        chain.push(ChainLink::Evicted { span: cursor, window_us: self.window_us });
                    } else {
                        chain.push(ChainLink::Missing { span: cursor });
                    }
                    break;
                }
            }
        }
        chain
    }
}

impl ViolationContext {
    /// Total drops in the window, all reasons combined.
    pub fn total_drops(&self) -> u64 {
        self.drops_by_reason.iter().map(|(_, n)| n).sum()
    }

    /// One-line human-readable verdict, most-likely cause first.
    pub fn verdict(&self) -> String {
        if self.in_partition {
            "partition active at violation time".to_string()
        } else if !self.crashed_nodes.is_empty() {
            format!("{} node(s) down at violation time", self.crashed_nodes.len())
        } else if self.total_drops() > 0 {
            format!("{} message(s) dropped in the window before", self.total_drops())
        } else {
            "no fault active: replication lag alone".to_string()
        }
    }
}

/// Explain the network conditions at violation time `t_us`, looking back
/// `window_us` for message drops. Events must be in recording order
/// (ascending `seq`), which [`obs::Recorder::events`] guarantees.
pub fn attribute_violation(events: &[TracedEvent], t_us: u64, window_us: u64) -> ViolationContext {
    let mut open_partitions: u64 = 0;
    let mut crashed: Vec<u64> = Vec::new();
    let mut last_ae: Option<u64> = None;
    let mut drops: Vec<(String, u64)> = Vec::new();
    let window_start = t_us.saturating_sub(window_us);
    for ev in events.iter().take_while(|e| e.t_us <= t_us) {
        match &ev.kind {
            EventKind::PartitionStart { .. } => open_partitions += 1,
            EventKind::PartitionHeal => open_partitions = open_partitions.saturating_sub(1),
            EventKind::Crash { node } if !crashed.contains(node) => crashed.push(*node),
            EventKind::Recover { node } => crashed.retain(|n| n != node),
            EventKind::AntiEntropyRound { .. } => last_ae = Some(ev.t_us),
            EventKind::MessageDropped { reason, .. } if ev.t_us >= window_start => {
                let name = reason.name();
                match drops.iter_mut().find(|(r, _)| r == name) {
                    Some((_, n)) => *n += 1,
                    None => drops.push((name.to_string(), 1)),
                }
            }
            _ => {}
        }
    }
    ViolationContext {
        t_us,
        in_partition: open_partitions > 0,
        drops_by_reason: drops,
        crashed_nodes: crashed,
        since_anti_entropy_us: last_ae.map(|ae| t_us.saturating_sub(ae)),
        in_flight_spans: spans_at(events, t_us),
    }
}

/// Attribute a batch of violation times and summarize: how many happened
/// under a partition, with a node down, near drops, or with no fault at
/// all (pure replication lag).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributionSummary {
    /// Violations with a partition active.
    pub during_partition: u64,
    /// Violations with at least one node down (and no partition).
    pub during_crash: u64,
    /// Violations preceded by message drops (no partition, no crash).
    pub near_drops: u64,
    /// Violations with no fault in sight.
    pub unattributed: u64,
}

/// Classify each violation time with [`attribute_violation`] and count
/// the buckets.
pub fn summarize_attributions(
    events: &[TracedEvent],
    violation_times_us: &[u64],
    window_us: u64,
) -> AttributionSummary {
    let mut s = AttributionSummary::default();
    for &t in violation_times_us {
        let ctx = attribute_violation(events, t, window_us);
        if ctx.in_partition {
            s.during_partition += 1;
        } else if !ctx.crashed_nodes.is_empty() {
            s.during_crash += 1;
        } else if ctx.total_drops() > 0 {
            s.near_drops += 1;
        } else {
            s.unattributed += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::DropReason;

    fn ev(seq: u64, t_us: u64, kind: EventKind) -> TracedEvent {
        TracedEvent { seq, t_us, kind }
    }

    #[test]
    fn partition_interval_is_attributed() {
        let events = vec![
            ev(0, 100, EventKind::PartitionStart { island: vec![0] }),
            ev(1, 500, EventKind::PartitionHeal),
        ];
        assert!(attribute_violation(&events, 300, 1_000).in_partition);
        assert!(!attribute_violation(&events, 600, 0).in_partition);
        assert!(!attribute_violation(&events, 50, 0).in_partition);
    }

    #[test]
    fn drops_window_and_crash_tracking() {
        let events = vec![
            ev(0, 100, EventKind::Crash { node: 2 }),
            ev(
                1,
                200,
                EventKind::MessageDropped {
                    from: 0,
                    to: 2,
                    reason: DropReason::CrashedDestination,
                    trace: 0,
                    span: 0,
                },
            ),
            ev(2, 300, EventKind::Recover { node: 2 }),
            ev(
                3,
                400,
                EventKind::MessageDropped {
                    from: 1,
                    to: 0,
                    reason: DropReason::Loss,
                    trace: 0,
                    span: 0,
                },
            ),
        ];
        let ctx = attribute_violation(&events, 250, 100);
        assert_eq!(ctx.crashed_nodes, vec![2]);
        assert_eq!(ctx.total_drops(), 1);
        let ctx = attribute_violation(&events, 450, 100);
        assert!(ctx.crashed_nodes.is_empty());
        assert_eq!(ctx.drops_by_reason, vec![("loss".to_string(), 1)]);
        assert!(ctx.verdict().contains("dropped"));
    }

    #[test]
    fn spans_at_and_causal_chain_walk_the_tree() {
        use obs::SpanStatus;
        // Trace 1: root span 1 (node 9) -> child span 2 (node 3).
        let events = vec![
            ev(0, 100, EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 9, name: "op" }),
            ev(
                1,
                200,
                EventKind::SpanOpen { trace: 1, span: 2, parent: 1, node: 3, name: "replica" },
            ),
            ev(2, 300, EventKind::SpanClose { trace: 1, span: 2, node: 3, status: SpanStatus::Ok }),
            ev(3, 500, EventKind::SpanClose { trace: 1, span: 1, node: 9, status: SpanStatus::Ok }),
        ];
        // At t=250 both spans are in flight; at t=400 only the root.
        let at = spans_at(&events, 250);
        assert_eq!(at.iter().map(|s| s.span).collect::<Vec<_>>(), vec![1, 2]);
        let at = spans_at(&events, 400);
        assert_eq!(at.iter().map(|s| s.span).collect::<Vec<_>>(), vec![1]);
        // The chain from the child reaches the root via the parent link.
        let chain = causal_chain(&events, 2);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].name, "replica");
        assert_eq!(chain[0].close_t_us, Some(300));
        assert_eq!(chain[1].name, "op");
        assert_eq!(chain[1].parent, 0);
        // attribute_violation carries the in-flight spans along.
        let ctx = attribute_violation(&events, 250, 0);
        assert_eq!(ctx.in_flight_spans.len(), 2);
    }

    #[test]
    fn windowed_chain_matches_full_table_when_nothing_evicted() {
        use obs::SpanStatus;
        let events = vec![
            ev(0, 100, EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 9, name: "op" }),
            ev(
                1,
                200,
                EventKind::SpanOpen { trace: 1, span: 2, parent: 1, node: 3, name: "replica" },
            ),
            ev(2, 300, EventKind::SpanClose { trace: 1, span: 2, node: 3, status: SpanStatus::Ok }),
        ];
        let mut w = SpanWindow::new(1_000_000);
        for e in &events {
            w.observe(e);
        }
        w.advance(400);
        let windowed = w.causal_chain(2);
        let full = causal_chain(&events, 2);
        assert_eq!(windowed.len(), full.len());
        for (link, span) in windowed.iter().zip(&full) {
            assert_eq!(link, &ChainLink::Span(span.clone()));
        }
        assert_eq!(w.events_evicted(), 0);
    }

    #[test]
    fn evicted_cause_is_reported_not_missed() {
        use obs::SpanStatus;
        // Root span 1 closes early; its grandchild's violation is
        // investigated long after the root aged out of the window.
        let mut w = SpanWindow::new(100);
        w.observe(&ev(
            0,
            10,
            EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "op" },
        ));
        w.observe(&ev(
            1,
            20,
            EventKind::SpanClose { trace: 1, span: 1, node: 0, status: SpanStatus::Ok },
        ));
        w.observe(&ev(
            2,
            30,
            EventKind::SpanOpen { trace: 1, span: 2, parent: 1, node: 3, name: "replica" },
        ));
        assert_eq!(w.advance(500), 1, "the closed root ages out");
        let chain = w.causal_chain(2);
        assert_eq!(chain.len(), 2);
        assert!(matches!(chain[0], ChainLink::Span(ref s) if s.span == 2));
        assert_eq!(chain[1], ChainLink::Evicted { span: 1, window_us: 100 });
        assert!(chain[1].describe().contains("evicted, window="));
        // A parent id that was never observed is distinguishable from an
        // evicted one.
        let ghost = w.causal_chain(99);
        assert_eq!(ghost, vec![ChainLink::Missing { span: 99 }]);
    }

    #[test]
    fn open_spans_survive_eviction() {
        let mut w = SpanWindow::new(0);
        w.observe(&ev(
            0,
            10,
            EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "op" },
        ));
        assert_eq!(w.advance(1_000_000), 0, "open spans are never evicted");
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn summary_buckets_violations() {
        let events = vec![
            ev(0, 100, EventKind::PartitionStart { island: vec![0, 1] }),
            ev(1, 200, EventKind::PartitionHeal),
            ev(2, 900, EventKind::AntiEntropyRound { node: 0, fanout: 1 }),
        ];
        let s = summarize_attributions(&events, &[150, 1_000], 50);
        assert_eq!(s.during_partition, 1);
        assert_eq!(s.unattributed, 1);
        let ctx = attribute_violation(&events, 1_000, 50);
        assert_eq!(ctx.since_anti_entropy_us, Some(100));
    }
}
