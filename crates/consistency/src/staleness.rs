//! Staleness measurement (PBS-style).
//!
//! A read is **stale** if, at the moment it was invoked, some write to the
//! same key had already been *acknowledged* (completed at its client) and
//! carries a stamp newer than the version the read returned. For each
//! stale read we record:
//!
//! * **k-staleness** — how many acknowledged-newer writes it missed, and
//! * **t-staleness** — how long before the read's invocation the oldest
//!   missed write was acknowledged (how far in the past the read's view
//!   is, in milliseconds).
//!
//! `probability of staleness = stale / (stale + fresh)` is the quantity
//! the PBS paper plots against (N, R, W); experiment E1 regenerates that
//! table on the quorum protocol.

use serde::{Deserialize, Serialize};
use simnet::{OpKind, OpTrace, SimTime};
use std::collections::BTreeMap;

/// An acknowledged write: completion time and version stamp.
type AckedWrite = (SimTime, (u64, u64));

/// Staleness metrics for one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StalenessReport {
    /// Reads that reflected the newest acknowledged write.
    pub fresh_reads: u64,
    /// Reads that missed at least one acknowledged write.
    pub stale_reads: u64,
    /// Reads with no acknowledged prior write (not classifiable).
    pub unclassified_reads: u64,
    /// k-staleness per stale read (number of missed acked writes).
    pub k_staleness: Vec<u64>,
    /// t-staleness per stale read, in milliseconds.
    pub t_staleness_ms: Vec<f64>,
}

impl StalenessReport {
    /// Probability a classifiable read was stale.
    pub fn p_stale(&self) -> f64 {
        let total = self.fresh_reads + self.stale_reads;
        if total == 0 {
            0.0
        } else {
            self.stale_reads as f64 / total as f64
        }
    }

    /// Mean k-staleness over stale reads (0 if none).
    pub fn mean_k(&self) -> f64 {
        if self.k_staleness.is_empty() {
            0.0
        } else {
            self.k_staleness.iter().sum::<u64>() as f64 / self.k_staleness.len() as f64
        }
    }

    /// Fraction of classifiable reads whose t-staleness exceeds `bound_ms`
    /// (fresh reads count as staleness 0).
    pub fn p_staler_than(&self, bound_ms: f64) -> f64 {
        let total = self.fresh_reads + self.stale_reads;
        if total == 0 {
            return 0.0;
        }
        let over = self.t_staleness_ms.iter().filter(|&&t| t > bound_ms).count();
        over as f64 / total as f64
    }
}

/// Measure staleness over a trace.
pub fn measure_staleness(trace: &OpTrace) -> StalenessReport {
    // Index acknowledged writes per key: (completed, stamp).
    let mut writes_per_key: BTreeMap<u64, Vec<AckedWrite>> = BTreeMap::new();
    for r in trace.successful() {
        if r.kind == OpKind::Write {
            if let Some(s) = r.stamp {
                writes_per_key.entry(r.key).or_default().push((r.completed, s));
            }
        }
    }
    for ws in writes_per_key.values_mut() {
        ws.sort_unstable();
    }

    let mut report = StalenessReport::default();
    for r in trace.successful() {
        if r.kind != OpKind::Read {
            continue;
        }
        let Some(ws) = writes_per_key.get(&r.key) else {
            report.unclassified_reads += 1;
            continue;
        };
        // Writes acknowledged strictly before the read was invoked.
        let acked: Vec<&AckedWrite> = ws.iter().take_while(|(c, _)| *c < r.invoked).collect();
        if acked.is_empty() {
            report.unclassified_reads += 1;
            continue;
        }
        let returned = r.stamp.unwrap_or((0, 0));
        let missed: Vec<&&AckedWrite> = acked.iter().filter(|(_, s)| *s > returned).collect();
        if missed.is_empty() {
            report.fresh_reads += 1;
        } else {
            report.stale_reads += 1;
            report.k_staleness.push(missed.len() as u64);
            let oldest_missed_ack = missed.iter().map(|(c, _)| *c).min().expect("non-empty");
            report
                .t_staleness_ms
                .push(r.invoked.saturating_since(oldest_missed_ack).as_millis_f64());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, OpRecord};

    fn write(key: u64, stamp: (u64, u64), completed_ms: u64) -> OpRecord {
        OpRecord {
            session: 1,
            op_id: stamp.0,
            key,
            kind: OpKind::Write,
            value_written: Some(stamp.0),
            value_read: vec![],
            invoked: SimTime::from_millis(completed_ms.saturating_sub(1)),
            completed: SimTime::from_millis(completed_ms),
            replica: NodeId(0),
            ok: true,
            version_ts: None,
            stamp: Some(stamp),
        }
    }

    fn read(key: u64, stamp: Option<(u64, u64)>, invoked_ms: u64) -> OpRecord {
        OpRecord {
            session: 2,
            op_id: 100 + invoked_ms,
            key,
            kind: OpKind::Read,
            value_written: None,
            value_read: stamp.map(|s| s.0).into_iter().collect(),
            invoked: SimTime::from_millis(invoked_ms),
            completed: SimTime::from_millis(invoked_ms + 1),
            replica: NodeId(0),
            ok: true,
            version_ts: None,
            stamp,
        }
    }

    #[test]
    fn fresh_read_counts_fresh() {
        let mut t = OpTrace::new();
        t.push(write(1, (1, 0), 10));
        t.push(read(1, Some((1, 0)), 20));
        let r = measure_staleness(&t);
        assert_eq!(r.fresh_reads, 1);
        assert_eq!(r.stale_reads, 0);
        assert_eq!(r.p_stale(), 0.0);
    }

    #[test]
    fn stale_read_records_k_and_t() {
        let mut t = OpTrace::new();
        t.push(write(1, (1, 0), 10));
        t.push(write(1, (2, 0), 30));
        t.push(write(1, (3, 0), 50));
        // Read at 100 returns version (1,0): missed 2 acked writes, the
        // oldest of which was acked at 30 → t-staleness = 70ms.
        t.push(read(1, Some((1, 0)), 100));
        let r = measure_staleness(&t);
        assert_eq!(r.stale_reads, 1);
        assert_eq!(r.k_staleness, vec![2]);
        assert_eq!(r.t_staleness_ms, vec![70.0]);
        assert_eq!(r.mean_k(), 2.0);
    }

    #[test]
    fn empty_read_with_acked_writes_is_maximally_stale() {
        let mut t = OpTrace::new();
        t.push(write(1, (1, 0), 10));
        t.push(read(1, None, 100));
        let r = measure_staleness(&t);
        assert_eq!(r.stale_reads, 1);
        assert_eq!(r.k_staleness, vec![1]);
    }

    #[test]
    fn read_before_any_ack_is_unclassified() {
        let mut t = OpTrace::new();
        t.push(write(1, (1, 0), 50));
        t.push(read(1, None, 20)); // write not yet acked at read time
        let r = measure_staleness(&t);
        assert_eq!(r.unclassified_reads, 1);
        assert_eq!(r.stale_reads, 0);
    }

    #[test]
    fn in_flight_write_does_not_make_read_stale() {
        let mut t = OpTrace::new();
        t.push(write(1, (1, 0), 10));
        t.push(write(1, (2, 0), 200)); // acked after the read
        t.push(read(1, Some((1, 0)), 100));
        let r = measure_staleness(&t);
        assert_eq!(r.fresh_reads, 1);
        assert_eq!(r.stale_reads, 0);
    }

    #[test]
    fn read_of_newer_than_acked_is_fresh() {
        // A read can return a version newer than every *acked* write
        // (the write is still in flight): that is fresh, not stale.
        let mut t = OpTrace::new();
        t.push(write(1, (1, 0), 10));
        t.push(write(1, (5, 0), 500));
        t.push(read(1, Some((5, 0)), 100)); // read sees the in-flight write
        let r = measure_staleness(&t);
        assert_eq!(r.fresh_reads, 1);
    }

    #[test]
    fn p_staler_than_counts_fresh_as_zero() {
        let mut t = OpTrace::new();
        t.push(write(1, (1, 0), 10));
        t.push(write(1, (2, 0), 20));
        t.push(read(1, Some((2, 0)), 50)); // fresh
        t.push(read(1, Some((1, 0)), 100)); // stale by 80ms
        let r = measure_staleness(&t);
        assert_eq!(r.p_stale(), 0.5);
        assert_eq!(r.p_staler_than(50.0), 0.5);
        assert_eq!(r.p_staler_than(100.0), 0.0);
    }

    #[test]
    fn keys_are_independent() {
        let mut t = OpTrace::new();
        t.push(write(1, (1, 0), 10));
        t.push(read(2, None, 100)); // different key: nothing to miss
        let r = measure_staleness(&t);
        assert_eq!(r.unclassified_reads, 1);
    }
}
