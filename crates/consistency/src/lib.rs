//! # consistency — what did the clients actually observe?
//!
//! The tutorial's taxonomy only means something if each guarantee can be
//! *checked*. This crate consumes the operation traces recorded by
//! `simnet`/`replication` — never protocol internals, so a buggy protocol
//! cannot hide from its checker — and answers:
//!
//! * [`session`] — how often were the four Bayou session guarantees
//!   (read-your-writes, monotonic reads, monotonic writes,
//!   writes-follow-reads) violated?
//! * [`staleness`] — how stale were reads, in time and in versions
//!   (k-staleness), PBS-style? Plus bounded-staleness accounting.
//! * [`linearizability`] — is the per-key register history linearizable
//!   (Wing & Gong search with memoization)?
//! * [`causal`] — did any client observe a write without its causal
//!   dependencies (the COPS photo-ACL anomaly)?
//! * [`convergence`] — once writes stopped, did replicas actually agree
//!   ("eventual" made falsifiable)?
//! * [`monotonic`] — did any session watch an inflationary CRDT counter
//!   go backwards (value-level monotonic reads, where stamps don't apply)?
//! * [`attribution`] — given the structured simulation event log
//!   (`obs`), *why* was a guarantee violated: partition, crash, message
//!   loss, or pure replication lag?
//! * [`stream`] — the same checkers as incremental streaming operators
//!   with watermark-driven state eviction, so arbitrarily long runs
//!   verify online in flat memory (the materialized checkers above stay
//!   the executable reference oracle; see `docs/CHECKERS.md`).
//!
//! Conventions shared by all checkers: every write carries a globally
//! unique value, so a read unambiguously identifies the write it observed;
//! logical version order is the Lamport `(counter, actor)` stamp recorded
//! in the trace.

pub mod attribution;
pub mod causal;
pub mod convergence;
pub mod linearizability;
pub mod monotonic;
pub mod session;
pub mod staleness;
pub mod stream;

pub use attribution::{
    all_spans, attribute_violation, causal_chain, spans_at, summarize_attributions,
    AttributionSummary, ChainLink, SpanAt, SpanWindow, ViolationContext,
};
pub use causal::{check_causal, CausalReport};
pub use convergence::{
    check_convergence, check_owner_convergence, ConvergenceReport, Divergence,
    OwnerConvergenceReport, OwnerDivergence,
};
pub use linearizability::{
    check_linearizable_register_bounded, check_trace_linearizable, Interval, LinCheckError, RegOp,
};
pub use monotonic::{check_monotonic_values, MonotonicValueReport};
pub use session::{check_session_guarantees, SessionReport};
pub use staleness::{measure_staleness, StalenessReport};
pub use stream::{
    ConvergenceStream, MonotonicStream, SessionStream, StalenessStream, StreamChecker,
    StreamConfig, StreamReports, StreamVerifier, StreamViolation, ViolationKind, Watermark,
};
