//! Monotonic reads over *values* rather than stamps.
//!
//! The session checker ([`crate::session`]) judges monotonic reads by
//! comparing Lamport stamps, which is the right lens for register
//! semantics: a version's stamp names its place in the install order.
//! CRDT counter reads don't fit that lens — a merged `crdt` counter has
//! no single installing write, and replicas stamp counter reads with
//! whatever their local clock happens to hold. What *is* meaningful for
//! an inflationary CRDT (a counter that only ever grows under merge) is
//! the read value itself: within a session, per key, the observed value
//! must never go backwards. A backwards step means the session's replica
//! lost state it had already exposed — e.g. a crash-amnesia restart of a
//! scheme whose durability layer was supposed to persist merged state.
//!
//! A read that returns nothing after the session has observed a non-zero
//! value is the degenerate backwards step (the counter "reset to 0") and
//! counts as a violation. Only successful operations participate, in
//! per-session issue order (`op_id`), matching the other checkers.

use serde::{Deserialize, Serialize};
use simnet::{OpKind, OpTrace};
use std::collections::BTreeMap;

/// Outcome of the value-monotonicity check for one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonotonicValueReport {
    /// Reads compared against an established per-session floor.
    pub checked: u64,
    /// Reads that observed a smaller value than an earlier read of the
    /// same key in the same session.
    pub violations: u64,
}

impl MonotonicValueReport {
    /// Violation rate, 0 when nothing was checked.
    pub fn rate(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.violations as f64 / self.checked as f64
        }
    }

    /// True when no read went backwards.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// The scalar a read observed: the sum of its returned values (a counter
/// read returns a single element; an empty read sums to 0).
fn observed(values: &[u64]) -> u64 {
    values.iter().sum()
}

/// Check that per-session, per-key read values never decrease.
pub fn check_monotonic_values(trace: &OpTrace) -> MonotonicValueReport {
    let mut report = MonotonicValueReport::default();
    for session in trace.sessions() {
        let mut ops: Vec<_> = trace.session(session).filter(|r| r.ok).collect();
        ops.sort_by_key(|r| r.op_id);
        let mut floor: BTreeMap<u64, u64> = BTreeMap::new(); // key -> max value read
        for op in ops {
            if op.kind != OpKind::Read {
                continue;
            }
            let v = observed(&op.value_read);
            if let Some(&f) = floor.get(&op.key) {
                report.checked += 1;
                if v < f {
                    report.violations += 1;
                }
            }
            let f = floor.entry(op.key).or_insert(v);
            *f = (*f).max(v);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, OpRecord, SimTime};

    fn read(session: u64, op_id: u64, key: u64, values: Vec<u64>, ok: bool) -> OpRecord {
        OpRecord {
            session,
            op_id,
            key,
            kind: OpKind::Read,
            value_written: None,
            value_read: values,
            invoked: SimTime::from_millis(op_id),
            completed: SimTime::from_millis(op_id + 1),
            replica: NodeId(0),
            ok,
            version_ts: None,
            stamp: None,
        }
    }

    #[test]
    fn non_decreasing_values_are_clean() {
        let mut t = OpTrace::new();
        t.push(read(1, 1, 5, vec![3], true));
        t.push(read(1, 2, 5, vec![3], true));
        t.push(read(1, 3, 5, vec![9], true));
        let r = check_monotonic_values(&t);
        assert_eq!(r.checked, 2);
        assert!(r.clean());
    }

    #[test]
    fn backwards_value_is_a_violation() {
        let mut t = OpTrace::new();
        t.push(read(1, 1, 5, vec![9], true));
        t.push(read(1, 2, 5, vec![3], true));
        let r = check_monotonic_values(&t);
        assert_eq!(r.violations, 1);
        assert!((r.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_read_after_nonzero_is_a_violation() {
        let mut t = OpTrace::new();
        t.push(read(1, 1, 5, vec![4], true));
        t.push(read(1, 2, 5, vec![], true));
        let r = check_monotonic_values(&t);
        assert_eq!(r.violations, 1);
    }

    #[test]
    fn sessions_and_keys_are_independent() {
        let mut t = OpTrace::new();
        t.push(read(1, 1, 5, vec![9], true));
        t.push(read(2, 1, 5, vec![3], true)); // other session
        t.push(read(1, 2, 6, vec![1], true)); // other key
        let r = check_monotonic_values(&t);
        assert_eq!(r.checked, 0);
        assert!(r.clean());
    }

    #[test]
    fn failed_reads_are_ignored() {
        let mut t = OpTrace::new();
        t.push(read(1, 1, 5, vec![9], true));
        t.push(read(1, 2, 5, vec![0], false));
        let r = check_monotonic_values(&t);
        assert_eq!(r.checked, 0);
        assert!(r.clean());
    }
}
