//! Convergence checking — "eventual" made falsifiable.
//!
//! Eventual consistency promises that once writes stop, replicas agree.
//! Over a black-box trace that becomes: after the last acknowledged write
//! (plus a caller-supplied grace period for propagation), all successful
//! reads of a key must return the same value set, regardless of which
//! replica served them. The checker reports disagreeing keys and the
//! replicas involved, and separately reports keys that were never read
//! after quiescence (unverifiable, not necessarily diverged).

use serde::{Deserialize, Serialize};
use simnet::{Duration, OpKind, OpTrace, SimTime};
use std::collections::BTreeMap;

/// One key's post-quiescence disagreement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// The key.
    pub key: u64,
    /// The distinct value sets observed (sorted), with an example replica
    /// that served each.
    pub views: Vec<(Vec<u64>, u32)>,
}

/// Result of the convergence check.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Keys read after quiescence that agreed everywhere.
    pub converged_keys: u64,
    /// Keys read after quiescence with disagreeing views.
    pub diverged: Vec<Divergence>,
    /// Keys with writes but no post-quiescence read (unverifiable).
    pub unverified_keys: u64,
    /// The quiescence point used (last write ack + grace).
    pub quiescence_at: SimTime,
}

impl ConvergenceReport {
    /// True if no key disagreed.
    pub fn converged(&self) -> bool {
        self.diverged.is_empty()
    }
}

/// Check convergence over a trace: after the last acknowledged write plus
/// `grace`, every successful read of a key must return the same value
/// set. Returns `None` if the trace contains no acknowledged writes
/// (nothing to converge on).
pub fn check_convergence(trace: &OpTrace, grace: Duration) -> Option<ConvergenceReport> {
    let last_write_ack =
        trace.successful().filter(|r| r.kind == OpKind::Write).map(|r| r.completed).max()?;
    let quiescence_at = last_write_ack + grace;

    // Keys that were ever written (only these can diverge meaningfully).
    let mut written: Vec<u64> =
        trace.successful().filter(|r| r.kind == OpKind::Write).map(|r| r.key).collect();
    written.sort_unstable();
    written.dedup();

    // Post-quiescence views per key: sorted value set -> example replica.
    let mut views: BTreeMap<u64, BTreeMap<Vec<u64>, u32>> = BTreeMap::new();
    for r in trace.successful() {
        if r.kind == OpKind::Read && r.invoked >= quiescence_at {
            let mut vals = r.value_read.clone();
            vals.sort_unstable();
            views.entry(r.key).or_default().entry(vals).or_insert(r.replica.0);
        }
    }

    let mut report = ConvergenceReport { quiescence_at, ..Default::default() };
    for key in written {
        match views.get(&key) {
            None => report.unverified_keys += 1,
            Some(v) if v.len() == 1 => report.converged_keys += 1,
            Some(v) => report.diverged.push(Divergence {
                key,
                views: v.iter().map(|(vals, rep)| (vals.clone(), *rep)).collect(),
            }),
        }
    }
    Some(report)
}

/// One key's owner-set disagreement at the end of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnerDivergence {
    /// The key.
    pub key: u64,
    /// `(owner, version)` per owner; `None` when the owner holds no copy.
    pub versions: Vec<(u32, Option<u64>)>,
}

/// Result of the ownership-aware convergence check.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnerConvergenceReport {
    /// Keys whose owners all agree on the stored version.
    pub converged_keys: u64,
    /// Keys whose owners disagree (or miss the key entirely).
    pub diverged: Vec<OwnerDivergence>,
}

impl OwnerConvergenceReport {
    /// True if every key's owners agree.
    pub fn converged(&self) -> bool {
        self.diverged.is_empty()
    }
}

/// Ownership-aware convergence over final store state: for every key
/// present anywhere, all of its *owners* (per the caller's placement
/// function — e.g. a consistent-hashing ring's preference list) must
/// hold the same version. An owner missing the key counts as divergence;
/// copies on non-owners (hints still parked, pre-rebalance residue) are
/// ignored — ownership, not residence, is the contract.
///
/// `versions` is `(node, key, version)` as produced by
/// `simnet::Actor::key_versions`.
pub fn check_owner_convergence(
    versions: &[(simnet::NodeId, u64, u64)],
    owners: impl Fn(u64) -> Vec<simnet::NodeId>,
) -> OwnerConvergenceReport {
    let mut by_key: BTreeMap<u64, BTreeMap<u32, u64>> = BTreeMap::new();
    for &(node, key, version) in versions {
        by_key.entry(key).or_default().insert(node.0, version);
    }
    let mut report = OwnerConvergenceReport::default();
    for (&key, held) in &by_key {
        let owner_views: Vec<(u32, Option<u64>)> =
            owners(key).into_iter().map(|o| (o.0, held.get(&o.0).copied())).collect();
        let mut distinct: Vec<Option<u64>> = owner_views.iter().map(|&(_, v)| v).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() <= 1 && distinct.first().map(|v| v.is_some()).unwrap_or(true) {
            report.converged_keys += 1;
        } else {
            report.diverged.push(OwnerDivergence { key, versions: owner_views });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, OpRecord};

    fn write(key: u64, completed_ms: u64) -> OpRecord {
        OpRecord {
            session: 1,
            op_id: completed_ms,
            key,
            kind: OpKind::Write,
            value_written: Some(completed_ms),
            value_read: vec![],
            invoked: SimTime::from_millis(completed_ms - 1),
            completed: SimTime::from_millis(completed_ms),
            replica: NodeId(0),
            ok: true,
            version_ts: None,
            stamp: None,
        }
    }

    fn read(key: u64, values: Vec<u64>, invoked_ms: u64, replica: u32) -> OpRecord {
        OpRecord {
            session: 2 + u64::from(replica),
            op_id: invoked_ms,
            key,
            kind: OpKind::Read,
            value_written: None,
            value_read: values,
            invoked: SimTime::from_millis(invoked_ms),
            completed: SimTime::from_millis(invoked_ms + 1),
            replica: NodeId(replica),
            ok: true,
            version_ts: None,
            stamp: None,
        }
    }

    #[test]
    fn empty_trace_has_nothing_to_converge() {
        assert!(check_convergence(&OpTrace::new(), Duration::from_millis(10)).is_none());
    }

    #[test]
    fn agreeing_replicas_converge() {
        let mut t = OpTrace::new();
        t.push(write(1, 10));
        t.push(read(1, vec![10], 100, 0));
        t.push(read(1, vec![10], 110, 1));
        let r = check_convergence(&t, Duration::from_millis(20)).unwrap();
        assert!(r.converged());
        assert_eq!(r.converged_keys, 1);
        assert_eq!(r.quiescence_at, SimTime::from_millis(30));
    }

    #[test]
    fn disagreeing_replicas_flagged() {
        let mut t = OpTrace::new();
        t.push(write(1, 10));
        t.push(read(1, vec![10], 100, 0));
        t.push(read(1, vec![], 110, 2)); // replica 2 still empty
        let r = check_convergence(&t, Duration::from_millis(20)).unwrap();
        assert!(!r.converged());
        assert_eq!(r.diverged.len(), 1);
        assert_eq!(r.diverged[0].key, 1);
        assert_eq!(r.diverged[0].views.len(), 2);
    }

    #[test]
    fn reads_inside_grace_window_do_not_count() {
        let mut t = OpTrace::new();
        t.push(write(1, 10));
        // A stale read at 15ms is within grace (quiescence at 30ms).
        t.push(read(1, vec![], 15, 2));
        t.push(read(1, vec![10], 100, 0));
        let r = check_convergence(&t, Duration::from_millis(20)).unwrap();
        assert!(r.converged(), "pre-quiescence staleness is not divergence");
    }

    #[test]
    fn unread_keys_are_unverified_not_converged() {
        let mut t = OpTrace::new();
        t.push(write(1, 10));
        t.push(write(2, 20));
        t.push(read(1, vec![10], 100, 0));
        let r = check_convergence(&t, Duration::from_millis(20)).unwrap();
        assert_eq!(r.converged_keys, 1);
        assert_eq!(r.unverified_keys, 1);
        assert!(r.converged());
    }

    #[test]
    fn sibling_sets_compare_as_sets() {
        // Two replicas returning the same siblings in different orders agree.
        let mut t = OpTrace::new();
        t.push(write(1, 10));
        t.push(read(1, vec![7, 10], 100, 0));
        t.push(read(1, vec![10, 7], 110, 1));
        let r = check_convergence(&t, Duration::from_millis(20)).unwrap();
        assert!(r.converged());
    }

    #[test]
    fn owner_convergence_checks_owners_only() {
        // Key 1 owned by {0, 1}: both agree. Key 2 owned by {1, 2}:
        // node 2 misses its copy. A stray copy of key 1 on non-owner 3
        // is ignored.
        let versions =
            vec![(NodeId(0), 1, 42), (NodeId(1), 1, 42), (NodeId(3), 1, 7), (NodeId(1), 2, 9)];
        let owners = |key: u64| match key {
            1 => vec![NodeId(0), NodeId(1)],
            _ => vec![NodeId(1), NodeId(2)],
        };
        let r = check_owner_convergence(&versions, owners);
        assert_eq!(r.converged_keys, 1);
        assert_eq!(r.diverged.len(), 1);
        assert_eq!(r.diverged[0].key, 2);
        assert_eq!(r.diverged[0].versions, vec![(1, Some(9)), (2, None)]);
        assert!(!r.converged());
    }

    #[test]
    fn owner_disagreement_is_divergence() {
        let versions = vec![(NodeId(0), 5, 10), (NodeId(1), 5, 11)];
        let r = check_owner_convergence(&versions, |_| vec![NodeId(0), NodeId(1)]);
        assert!(!r.converged());
        assert_eq!(r.diverged[0].versions, vec![(0, Some(10)), (1, Some(11))]);
    }
}
