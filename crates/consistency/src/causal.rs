//! Causal-anomaly checking (the COPS photo-ACL pattern).
//!
//! A trace is causally suspect when a session observes a write but later
//! fails to observe one of that write's *causal dependencies*. This
//! checker implements the one-hop closure of that rule:
//!
//! 1. Every write depends on (a) the earlier writes of its own session
//!    (program order) and (b) the writes its session had *read* before
//!    issuing it (reads-from order).
//! 2. When a session reads value `v` written by write `w`, it inherits
//!    per-key floors from `w`'s dependencies: for each dependency on key
//!    `k'` with stamp `s`, the reader's later reads of `k'` must return a
//!    stamp `>= s`.
//! 3. A session's own reads and writes also set floors (session order is
//!    part of causal order).
//!
//! Full transitive closure is not computed (dependencies-of-dependencies
//! beyond one reads-from hop are not chased); this catches the canonical
//! two-session anomalies the tutorial teaches while staying linear-ish in
//! trace size. The limitation is documented in DESIGN.md.

use serde::{Deserialize, Serialize};
use simnet::{OpKind, OpTrace};
use std::collections::BTreeMap;

/// Result of the causal check.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalReport {
    /// Dependency-floor checks performed.
    pub checked: u64,
    /// Reads that missed a causal dependency.
    pub violations: u64,
}

impl CausalReport {
    /// Violation rate (0 when nothing was checkable).
    pub fn rate(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.violations as f64 / self.checked as f64
        }
    }

    /// True if no anomaly was found.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// One write's identity and dependency set.
#[derive(Debug, Clone)]
struct WriteInfo {
    /// Per-key floors this write causally requires: key -> stamp.
    deps: BTreeMap<u64, (u64, u64)>,
    /// The write's own key and stamp (itself a dependency for observers).
    key: u64,
    stamp: (u64, u64),
}

/// Check the one-hop causal rule over a trace.
pub fn check_causal(trace: &OpTrace) -> CausalReport {
    // Pass 1: build each write's dependency set from its session's prior
    // activity (program order + reads-from).
    let mut write_info: BTreeMap<u64, WriteInfo> = BTreeMap::new(); // value -> info
    for session in trace.sessions() {
        let mut ops: Vec<_> = trace.session(session).filter(|r| r.ok).collect();
        ops.sort_by_key(|r| r.op_id);
        // Floors accumulated by this session so far (its causal past).
        let mut past: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for op in ops {
            match op.kind {
                OpKind::Read => {
                    if let (Some(s), false) = (op.stamp, op.value_read.is_empty()) {
                        let f = past.entry(op.key).or_insert(s);
                        *f = (*f).max(s);
                    }
                }
                OpKind::Write => {
                    let (Some(stamp), Some(value)) = (op.stamp, op.value_written) else {
                        continue;
                    };
                    write_info.insert(value, WriteInfo { deps: past.clone(), key: op.key, stamp });
                    let f = past.entry(op.key).or_insert(stamp);
                    *f = (*f).max(stamp);
                }
            }
        }
    }

    // Pass 2: replay each session's reads, inheriting floors from the
    // writes it observes, and checking later reads against them.
    let mut report = CausalReport::default();
    for session in trace.sessions() {
        let mut ops: Vec<_> = trace.session(session).filter(|r| r.ok).collect();
        ops.sort_by_key(|r| r.op_id);
        let mut floors: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for op in ops {
            match op.kind {
                OpKind::Read => {
                    // Check against inherited floors.
                    if let Some(&floor) = floors.get(&op.key) {
                        report.checked += 1;
                        if op.stamp.map(|s| s < floor).unwrap_or(true) {
                            report.violations += 1;
                        }
                    }
                    // My own reads are part of my causal past (monotonic
                    // reads is a sub-relation of causal order).
                    if let (Some(s), false) = (op.stamp, op.value_read.is_empty()) {
                        let f = floors.entry(op.key).or_insert(s);
                        *f = (*f).max(s);
                    }
                    // Inherit: the observed write's deps become my floors.
                    for v in &op.value_read {
                        if let Some(info) = write_info.get(v) {
                            for (&k, &s) in &info.deps {
                                let f = floors.entry(k).or_insert(s);
                                *f = (*f).max(s);
                            }
                            let f = floors.entry(info.key).or_insert(info.stamp);
                            *f = (*f).max(info.stamp);
                        }
                    }
                }
                OpKind::Write => {
                    if let Some(s) = op.stamp {
                        let f = floors.entry(op.key).or_insert(s);
                        *f = (*f).max(s);
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, OpRecord, SimTime};

    fn rec(
        session: u64,
        op_id: u64,
        key: u64,
        kind: OpKind,
        stamp: (u64, u64),
        value: u64,
        ok: bool,
    ) -> OpRecord {
        OpRecord {
            session,
            op_id,
            key,
            kind,
            value_written: (kind == OpKind::Write).then_some(value),
            value_read: if kind == OpKind::Read && value != 0 { vec![value] } else { vec![] },
            invoked: SimTime::from_millis(op_id * 10),
            completed: SimTime::from_millis(op_id * 10 + 5),
            replica: NodeId(0),
            ok,
            version_ts: None,
            stamp: Some(stamp),
        }
    }

    /// The photo-ACL anomaly: Alice writes acl (k1) then photo (k2); Bob
    /// reads the photo but then sees the *old* acl.
    #[test]
    fn photo_acl_anomaly_detected() {
        let mut t = OpTrace::new();
        // Pre-existing acl version with stamp (1,0), value 100.
        t.push(rec(0, 1, 1, OpKind::Write, (1, 0), 100, true));
        // Alice: new acl (stamp 5), then photo (stamp 6).
        t.push(rec(1, 1, 1, OpKind::Write, (5, 0), 101, true));
        t.push(rec(1, 2, 2, OpKind::Write, (6, 0), 102, true));
        // Bob: reads photo 102, then reads OLD acl 100 (stamp 1 < 5).
        t.push(rec(2, 1, 2, OpKind::Read, (6, 0), 102, true));
        t.push(rec(2, 2, 1, OpKind::Read, (1, 0), 100, true));
        let r = check_causal(&t);
        assert_eq!(r.violations, 1);
        assert!(!r.clean());
    }

    #[test]
    fn causally_closed_reads_are_clean() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 1, OpKind::Write, (5, 0), 101, true));
        t.push(rec(1, 2, 2, OpKind::Write, (6, 0), 102, true));
        // Bob reads the photo, then the NEW acl.
        t.push(rec(2, 1, 2, OpKind::Read, (6, 0), 102, true));
        t.push(rec(2, 2, 1, OpKind::Read, (5, 0), 101, true));
        let r = check_causal(&t);
        assert_eq!(r.checked, 1);
        assert!(r.clean());
    }

    #[test]
    fn reads_from_dependency_chains_through_reader() {
        // Alice reads Carol's write to k3, then writes k2. Bob reads
        // Alice's k2 write, then reads an old k3: violation (one hop
        // through Alice's read).
        let mut t = OpTrace::new();
        t.push(rec(0, 1, 3, OpKind::Write, (1, 0), 300, true)); // old k3
        t.push(rec(3, 1, 3, OpKind::Write, (7, 0), 301, true)); // Carol's k3
        t.push(rec(1, 1, 3, OpKind::Read, (7, 0), 301, true)); // Alice reads it
        t.push(rec(1, 2, 2, OpKind::Write, (8, 0), 102, true)); // Alice writes k2
        t.push(rec(2, 1, 2, OpKind::Read, (8, 0), 102, true)); // Bob reads k2
        t.push(rec(2, 2, 3, OpKind::Read, (1, 0), 300, true)); // Bob sees old k3!
        let r = check_causal(&t);
        assert_eq!(r.violations, 1);
    }

    #[test]
    fn unobserved_writes_impose_no_floors() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 1, OpKind::Write, (5, 0), 101, true));
        // Bob never reads anything of Alice's: reading an old k1 is merely
        // stale, not causally anomalous.
        t.push(rec(0, 1, 1, OpKind::Write, (1, 0), 100, true));
        t.push(rec(2, 1, 1, OpKind::Read, (1, 0), 100, true));
        let r = check_causal(&t);
        assert_eq!(r.checked, 0);
        assert!(r.clean());
    }

    #[test]
    fn own_session_floors_apply() {
        // A session reading its own key backwards is also causally wrong
        // (session order ⊆ causal order).
        let mut t = OpTrace::new();
        t.push(rec(0, 1, 1, OpKind::Write, (1, 0), 100, true));
        t.push(rec(1, 1, 1, OpKind::Read, (5, 0), 101, true));
        t.push(rec(1, 2, 1, OpKind::Read, (1, 0), 100, true));
        let r = check_causal(&t);
        assert_eq!(r.violations, 1);
    }

    #[test]
    fn failed_ops_ignored() {
        let mut t = OpTrace::new();
        t.push(rec(1, 1, 1, OpKind::Write, (5, 0), 101, false));
        t.push(rec(2, 1, 1, OpKind::Read, (1, 0), 100, true));
        let r = check_causal(&t);
        assert_eq!(r.checked, 0);
    }
}
