//! Streaming, bounded-memory consistency checking.
//!
//! The materialized checkers ([`crate::session`], [`crate::staleness`],
//! [`crate::monotonic`], [`crate::convergence`]) each walk a fully
//! resident [`OpTrace`], which caps verifiable run length at whatever
//! fits in memory. This module re-expresses them as **incremental
//! streaming operators**: each [`StreamChecker`] consumes one completed
//! operation at a time, flags violations online, and — when given a
//! bounded window — evicts state the advancing [`Watermark`] proves it
//! will never need again.
//!
//! The materialized checkers remain the executable reference oracle:
//! with an unbounded window (`window: None`), feeding a trace in
//! completion order produces reports **identical** to the batch
//! checkers' (`tests/checker_stream_parity.rs` enforces this
//! byte-for-byte across every scheme family). With a bounded window the
//! operators run in flat memory and can only *under*-report: eviction
//! drops old floors and old acknowledged writes, so every violation the
//! bounded checker flags is one the oracle flags too, and violations
//! whose evidence lies inside the window are still caught
//! (`tests/checker_stream_properties.rs`).
//!
//! # Feed-order contract
//!
//! Operations must be fed in `(completed, session, op_id)` order — the
//! order [`OpTrace::sort_by_completion`] produces. Two consequences the
//! operators rely on:
//!
//! * per key, acknowledged writes arrive in completion order, so the
//!   staleness index stays sorted by construction;
//! * per session, ops arrive in issue (`op_id`) order — true for the
//!   closed-loop clients used throughout this workspace, where an op
//!   completes before the next is issued, and enforced by the
//!   tie-breaking sort key even when completion times collide.
//!
//! # Watermarks and eviction
//!
//! [`Watermark`] `t` is a promise from the feeder: *no future operation
//! completes before `t`*. A checker constructed with window `w` may then
//! discard state last touched before `t - w`. Everything evicted is
//! counted (exported as the `checker_events_evicted` counter; violations
//! flagged online bump `stream_violations`) so a bounded run is never
//! silently lossy. Semantics per checker are documented in
//! `docs/CHECKERS.md`.

use crate::convergence::{ConvergenceReport, Divergence};
use crate::monotonic::MonotonicValueReport;
use crate::session::SessionReport;
use crate::staleness::StalenessReport;
use obs::{Counter, Recorder};
use serde::{Deserialize, Serialize};
use simnet::{Duration, OpKind, OpRecord, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// A virtual-time watermark: the feeder's promise that every operation
/// fed from now on has `completed >= t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Watermark {
    /// The promised lower bound on future completion times (virtual).
    pub t: SimTime,
}

impl Watermark {
    /// A watermark at virtual time `t`.
    pub fn at(t: SimTime) -> Self {
        Watermark { t }
    }
}

/// Which guarantee a streamed operation violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A session read missed its own earlier write (RYW).
    ReadYourWrites,
    /// A session read went backwards in stamp order (MR).
    MonotonicReads,
    /// A session write was ordered before an earlier one (MW).
    MonotonicWrites,
    /// A session write was ordered before something it read (WFR).
    WritesFollowReads,
    /// A read missed at least one acknowledged write (PBS staleness).
    StaleRead,
    /// A session watched an inflationary value go backwards.
    ValueRegression,
    /// Post-quiescence reads of a key disagreed (convergence failure).
    Divergence,
}

impl ViolationKind {
    /// Stable snake_case name for display and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::ReadYourWrites => "read_your_writes",
            ViolationKind::MonotonicReads => "monotonic_reads",
            ViolationKind::MonotonicWrites => "monotonic_writes",
            ViolationKind::WritesFollowReads => "writes_follow_reads",
            ViolationKind::StaleRead => "stale_read",
            ViolationKind::ValueRegression => "value_regression",
            ViolationKind::Divergence => "divergence",
        }
    }
}

/// One violation flagged online by a streaming checker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamViolation {
    /// The violated guarantee.
    pub kind: ViolationKind,
    /// The violating session.
    pub session: u64,
    /// The violating operation (0 for finish-time divergence findings).
    pub op_id: u64,
    /// The key involved.
    pub key: u64,
    /// Virtual time of the finding (µs): the op's completion, or the
    /// quiescence point for divergence.
    pub t_us: u64,
}

/// An incremental consistency checker over the completed-operation
/// stream.
///
/// Implementations mirror one materialized checker each and must agree
/// with it exactly when never asked to evict (unbounded window); see the
/// module docs for the feed-order contract.
pub trait StreamChecker {
    /// The checker's stable name (used in logs and `tracequery`).
    fn name(&self) -> &'static str;

    /// Consume one completed operation, appending any violations it
    /// exposes to `out`.
    fn feed(&mut self, op: &OpRecord, out: &mut Vec<StreamViolation>);

    /// Observe a watermark advance: state only needed for operations
    /// completing before `wm.t - window` may be evicted.
    fn advance(&mut self, wm: Watermark);

    /// Total state entries evicted so far (watermark eviction plus any
    /// feed-time invalidation, e.g. convergence view clearing).
    fn events_evicted(&self) -> u64;
}

/// Eviction cutoff for a watermark under an optional window: state last
/// touched before the returned time is reclaimable.
fn cutoff(wm: Watermark, window: Option<Duration>) -> Option<SimTime> {
    window.map(|w| SimTime::from_micros(wm.t.as_micros().saturating_sub(w.0)))
}

// ---------------------------------------------------------------------------
// Session guarantees
// ---------------------------------------------------------------------------

/// Per-session floors for the four Bayou session guarantees.
#[derive(Debug, Default)]
struct SessionState {
    write_floor: BTreeMap<u64, (u64, u64)>,
    read_floor: BTreeMap<u64, (u64, u64)>,
    last_write_stamp: Option<(u64, u64)>,
    max_read_stamp: Option<(u64, u64)>,
    last_touch: SimTime,
}

impl SessionState {
    fn entries(&self) -> u64 {
        self.write_floor.len() as u64
            + self.read_floor.len() as u64
            + self.last_write_stamp.is_some() as u64
            + self.max_read_stamp.is_some() as u64
    }
}

/// Streaming form of [`crate::session::check_session_guarantees`].
///
/// State is per session: two per-key stamp floors plus two scalar
/// stamps. Eviction drops whole sessions idle for longer than the
/// window; a session that writes again after eviction restarts with
/// empty floors, so bounded runs can only miss checks, never invent
/// violations.
#[derive(Debug)]
pub struct SessionStream {
    window: Option<Duration>,
    sessions: BTreeMap<u64, SessionState>,
    report: SessionReport,
    evicted: u64,
}

impl SessionStream {
    /// A session-guarantee stream; `window: None` never evicts (exact
    /// batch parity).
    pub fn new(window: Option<Duration>) -> Self {
        SessionStream {
            window,
            sessions: BTreeMap::new(),
            report: SessionReport::default(),
            evicted: 0,
        }
    }

    /// The accumulated report (identical to the batch checker's when
    /// unbounded and fed in order).
    pub fn report(&self) -> &SessionReport {
        &self.report
    }

    /// Consume the stream, yielding the final report.
    pub fn into_report(self) -> SessionReport {
        self.report
    }
}

impl StreamChecker for SessionStream {
    fn name(&self) -> &'static str {
        "session"
    }

    fn feed(&mut self, op: &OpRecord, out: &mut Vec<StreamViolation>) {
        if !op.ok {
            return;
        }
        let st = self.sessions.entry(op.session).or_default();
        st.last_touch = op.completed;
        let violation = |kind| StreamViolation {
            kind,
            session: op.session,
            op_id: op.op_id,
            key: op.key,
            t_us: op.completed.as_micros(),
        };
        match op.kind {
            OpKind::Read => {
                if let Some(&w) = st.write_floor.get(&op.key) {
                    self.report.ryw_checked += 1;
                    if op.stamp.map(|s| s < w).unwrap_or(true) {
                        self.report.ryw_violations += 1;
                        out.push(violation(ViolationKind::ReadYourWrites));
                    }
                }
                if let Some(&f) = st.read_floor.get(&op.key) {
                    self.report.mr_checked += 1;
                    if op.stamp.map(|s| s < f).unwrap_or(true) {
                        self.report.mr_violations += 1;
                        out.push(violation(ViolationKind::MonotonicReads));
                    }
                }
                if let Some(s) = op.stamp {
                    let f = st.read_floor.entry(op.key).or_insert(s);
                    *f = (*f).max(s);
                    st.max_read_stamp = Some(st.max_read_stamp.map_or(s, |m: (u64, u64)| m.max(s)));
                }
            }
            OpKind::Write => {
                let Some(s) = op.stamp else { return };
                if let Some(prev) = st.last_write_stamp {
                    self.report.mw_checked += 1;
                    if s < prev {
                        self.report.mw_violations += 1;
                        out.push(violation(ViolationKind::MonotonicWrites));
                    }
                }
                if let Some(r) = st.max_read_stamp {
                    self.report.wfr_checked += 1;
                    if s < r {
                        self.report.wfr_violations += 1;
                        out.push(violation(ViolationKind::WritesFollowReads));
                    }
                }
                st.last_write_stamp = Some(st.last_write_stamp.map_or(s, |p: (u64, u64)| p.max(s)));
                let f = st.write_floor.entry(op.key).or_insert(s);
                *f = (*f).max(s);
            }
        }
    }

    fn advance(&mut self, wm: Watermark) {
        let Some(cut) = cutoff(wm, self.window) else { return };
        let mut dropped = 0;
        self.sessions.retain(|_, st| {
            if st.last_touch < cut {
                dropped += st.entries();
                false
            } else {
                true
            }
        });
        self.evicted += dropped;
    }

    fn events_evicted(&self) -> u64 {
        self.evicted
    }
}

// ---------------------------------------------------------------------------
// Staleness
// ---------------------------------------------------------------------------

/// Streaming form of [`crate::staleness::measure_staleness`].
///
/// State is the per-key index of acknowledged writes `(completed,
/// stamp)`, kept sorted by construction (feed order is completion
/// order). Eviction drops writes acknowledged before the window; a read
/// can then only miss *fewer* acked writes than the oracle sees, so
/// bounded runs under-count staleness and never over-count.
///
/// `retain_samples: false` drops the per-read `k_staleness` /
/// `t_staleness_ms` sample vectors (which grow with the number of stale
/// reads) for true flat-memory monitoring; the scalar counts are always
/// kept.
/// Per-key acknowledged-write index entries: `(ack time, stamp)`,
/// completion-sorted by construction.
type KeyWrites = Vec<(SimTime, (u64, u64))>;

#[derive(Debug)]
pub struct StalenessStream {
    window: Option<Duration>,
    retain_samples: bool,
    writes: BTreeMap<u64, KeyWrites>,
    report: StalenessReport,
    evicted: u64,
}

impl StalenessStream {
    /// A staleness stream; `window: None` never evicts.
    pub fn new(window: Option<Duration>, retain_samples: bool) -> Self {
        StalenessStream {
            window,
            retain_samples,
            writes: BTreeMap::new(),
            report: StalenessReport::default(),
            evicted: 0,
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> &StalenessReport {
        &self.report
    }

    /// Consume the stream, yielding the final report.
    pub fn into_report(self) -> StalenessReport {
        self.report
    }
}

impl StreamChecker for StalenessStream {
    fn name(&self) -> &'static str {
        "staleness"
    }

    fn feed(&mut self, op: &OpRecord, out: &mut Vec<StreamViolation>) {
        if !op.ok {
            return;
        }
        match op.kind {
            OpKind::Write => {
                if let Some(s) = op.stamp {
                    self.writes.entry(op.key).or_default().push((op.completed, s));
                }
            }
            OpKind::Read => {
                let Some(ws) = self.writes.get(&op.key) else {
                    self.report.unclassified_reads += 1;
                    return;
                };
                // Writes acknowledged strictly before the read was
                // invoked; the index is completion-sorted, so this is
                // the same prefix the batch checker's `take_while`
                // selects.
                let acked = &ws[..ws.partition_point(|&(c, _)| c < op.invoked)];
                if acked.is_empty() {
                    self.report.unclassified_reads += 1;
                    return;
                }
                let returned = op.stamp.unwrap_or((0, 0));
                let missed = acked.iter().filter(|&&(_, s)| s > returned);
                let (k, oldest) = missed.fold((0u64, None::<SimTime>), |(k, oldest), &(c, _)| {
                    (k + 1, Some(oldest.map_or(c, |o| o.min(c))))
                });
                match oldest {
                    None => self.report.fresh_reads += 1,
                    Some(oldest_missed_ack) => {
                        self.report.stale_reads += 1;
                        if self.retain_samples {
                            self.report.k_staleness.push(k);
                            self.report.t_staleness_ms.push(
                                op.invoked.saturating_since(oldest_missed_ack).as_millis_f64(),
                            );
                        }
                        out.push(StreamViolation {
                            kind: ViolationKind::StaleRead,
                            session: op.session,
                            op_id: op.op_id,
                            key: op.key,
                            t_us: op.completed.as_micros(),
                        });
                    }
                }
            }
        }
    }

    fn advance(&mut self, wm: Watermark) {
        let Some(cut) = cutoff(wm, self.window) else { return };
        let mut dropped = 0;
        self.writes.retain(|_, ws| {
            let keep_from = ws.partition_point(|&(c, _)| c < cut);
            dropped += keep_from as u64;
            ws.drain(..keep_from);
            !ws.is_empty()
        });
        self.evicted += dropped;
    }

    fn events_evicted(&self) -> u64 {
        self.evicted
    }
}

// ---------------------------------------------------------------------------
// Monotonic values
// ---------------------------------------------------------------------------

/// Streaming form of [`crate::monotonic::check_monotonic_values`].
///
/// State is one `(floor, last_touch)` per `(session, key)`. Eviction of
/// idle floors means a later read re-establishes a (lower) floor, so
/// bounded runs can only miss regressions, never invent them.
#[derive(Debug)]
pub struct MonotonicStream {
    window: Option<Duration>,
    floors: BTreeMap<(u64, u64), (u64, SimTime)>,
    report: MonotonicValueReport,
    evicted: u64,
}

impl MonotonicStream {
    /// A value-monotonicity stream; `window: None` never evicts.
    pub fn new(window: Option<Duration>) -> Self {
        MonotonicStream {
            window,
            floors: BTreeMap::new(),
            report: MonotonicValueReport::default(),
            evicted: 0,
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> &MonotonicValueReport {
        &self.report
    }

    /// Consume the stream, yielding the final report.
    pub fn into_report(self) -> MonotonicValueReport {
        self.report
    }
}

impl StreamChecker for MonotonicStream {
    fn name(&self) -> &'static str {
        "monotonic"
    }

    fn feed(&mut self, op: &OpRecord, out: &mut Vec<StreamViolation>) {
        if !op.ok || op.kind != OpKind::Read {
            return;
        }
        let v: u64 = op.value_read.iter().sum();
        match self.floors.entry((op.session, op.key)) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let (floor, touch) = e.get_mut();
                self.report.checked += 1;
                if v < *floor {
                    self.report.violations += 1;
                    out.push(StreamViolation {
                        kind: ViolationKind::ValueRegression,
                        session: op.session,
                        op_id: op.op_id,
                        key: op.key,
                        t_us: op.completed.as_micros(),
                    });
                }
                *floor = (*floor).max(v);
                *touch = op.completed;
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((v, op.completed));
            }
        }
    }

    fn advance(&mut self, wm: Watermark) {
        let Some(cut) = cutoff(wm, self.window) else { return };
        let before = self.floors.len();
        self.floors.retain(|_, &mut (_, touch)| touch >= cut);
        self.evicted += (before - self.floors.len()) as u64;
    }

    fn events_evicted(&self) -> u64 {
        self.evicted
    }
}

// ---------------------------------------------------------------------------
// Convergence
// ---------------------------------------------------------------------------

/// Streaming form of [`crate::convergence::check_convergence`].
///
/// The batch checker needs the *final* quiescence point (last write ack
/// plus grace) before it can classify any read, which looks inherently
/// offline. The streaming form exploits that each acknowledged write
/// *moves* quiescence past everything already seen: every stored
/// post-quiescence view was invoked at or before its own completion,
/// which precedes the new write's ack, which precedes the new quiescence
/// point (strictly, since grace > 0). So a write simply clears all
/// stored views — exactly reproducing the batch classification while
/// holding only post-quiescence state. Clearing is counted as eviction.
///
/// The written-key set and post-quiescence views are bounded by the
/// keyspace, not the trace length; watermark advances have nothing
/// further to evict.
#[derive(Debug)]
pub struct ConvergenceStream {
    grace: Duration,
    last_write_ack: Option<SimTime>,
    written: BTreeSet<u64>,
    views: BTreeMap<u64, BTreeMap<Vec<u64>, u32>>,
    evicted: u64,
}

impl ConvergenceStream {
    /// A convergence stream with the given propagation grace period.
    ///
    /// # Panics
    ///
    /// Panics if `grace` is zero: the clear-on-write equivalence proof
    /// needs quiescence strictly after the clearing write's ack.
    pub fn new(grace: Duration) -> Self {
        assert!(grace > Duration::ZERO, "ConvergenceStream requires a non-zero grace period");
        ConvergenceStream {
            grace,
            last_write_ack: None,
            written: BTreeSet::new(),
            views: BTreeMap::new(),
            evicted: 0,
        }
    }

    /// The quiescence estimate so far (last write ack + grace).
    pub fn quiescence_at(&self) -> Option<SimTime> {
        self.last_write_ack.map(|t| t + self.grace)
    }

    /// Classify every written key from the surviving views, exactly as
    /// the batch checker does at the same quiescence point. `None` if no
    /// write was ever acknowledged.
    pub fn report(&self) -> Option<ConvergenceReport> {
        let quiescence_at = self.quiescence_at()?;
        let mut report = ConvergenceReport { quiescence_at, ..Default::default() };
        for &key in &self.written {
            match self.views.get(&key) {
                None => report.unverified_keys += 1,
                Some(v) if v.len() == 1 => report.converged_keys += 1,
                Some(v) => report.diverged.push(Divergence {
                    key,
                    views: v.iter().map(|(vals, rep)| (vals.clone(), *rep)).collect(),
                }),
            }
        }
        Some(report)
    }
}

impl StreamChecker for ConvergenceStream {
    fn name(&self) -> &'static str {
        "convergence"
    }

    fn feed(&mut self, op: &OpRecord, _out: &mut Vec<StreamViolation>) {
        if !op.ok {
            return;
        }
        match op.kind {
            OpKind::Write => {
                self.written.insert(op.key);
                self.last_write_ack =
                    Some(self.last_write_ack.map_or(op.completed, |t| t.max(op.completed)));
                // Quiescence just moved strictly past every stored view.
                self.evicted += self.views.values().map(|v| v.len() as u64).sum::<u64>();
                self.views.clear();
            }
            OpKind::Read => {
                if let Some(q) = self.quiescence_at() {
                    if op.invoked >= q {
                        let mut vals = op.value_read.clone();
                        vals.sort_unstable();
                        self.views.entry(op.key).or_default().entry(vals).or_insert(op.replica.0);
                    }
                }
            }
        }
    }

    fn advance(&mut self, _wm: Watermark) {}

    fn events_evicted(&self) -> u64 {
        self.evicted
    }
}

// ---------------------------------------------------------------------------
// Verifier bundle
// ---------------------------------------------------------------------------

/// Configuration for a [`StreamVerifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Eviction window; `None` never evicts (exact batch parity).
    pub window: Option<Duration>,
    /// Convergence grace period (must be non-zero).
    pub grace: Duration,
    /// Keep the per-read staleness sample vectors (needed for batch
    /// parity; turn off for flat-memory monitoring).
    pub retain_samples: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { window: None, grace: Duration::from_millis(500), retain_samples: true }
    }
}

/// Final reports from a [`StreamVerifier`], one per operator, plus the
/// online violation log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReports {
    /// Session-guarantee report (batch-identical when unbounded).
    pub session: SessionReport,
    /// Staleness report (batch-identical when unbounded).
    pub staleness: StalenessReport,
    /// Value-monotonicity report (batch-identical when unbounded).
    pub monotonic: MonotonicValueReport,
    /// Convergence report; `None` if no write was acknowledged.
    pub convergence: Option<ConvergenceReport>,
    /// Every violation flagged, in feed order (divergences last).
    pub violations: Vec<StreamViolation>,
    /// Total state entries evicted across all operators.
    pub events_evicted: u64,
}

/// All four streaming checkers behind one feed point, with optional
/// [`Recorder`] export of the `stream_violations` /
/// `checker_events_evicted` counters.
#[derive(Debug)]
pub struct StreamVerifier {
    session: SessionStream,
    staleness: StalenessStream,
    monotonic: MonotonicStream,
    convergence: ConvergenceStream,
    violations: Vec<StreamViolation>,
    recorder: Option<Recorder>,
    reported_evicted: u64,
}

impl StreamVerifier {
    /// A verifier running all four operators under `config`.
    pub fn new(config: StreamConfig) -> Self {
        StreamVerifier {
            session: SessionStream::new(config.window),
            staleness: StalenessStream::new(config.window, config.retain_samples),
            monotonic: MonotonicStream::new(config.window),
            convergence: ConvergenceStream::new(config.grace),
            violations: Vec::new(),
            recorder: None,
            reported_evicted: 0,
        }
    }

    /// Export counters into `recorder` as the run progresses.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Feed one completed operation (see the module docs for the
    /// required order). Returns how many violations it exposed.
    pub fn feed(&mut self, op: &OpRecord) -> usize {
        let before = self.violations.len();
        self.session.feed(op, &mut self.violations);
        self.staleness.feed(op, &mut self.violations);
        self.monotonic.feed(op, &mut self.violations);
        self.convergence.feed(op, &mut self.violations);
        let found = self.violations.len() - before;
        if let Some(rec) = &self.recorder {
            if found > 0 {
                rec.count(Counter::StreamViolations, found as u64);
            }
        }
        found
    }

    /// Feed a completion-ordered slice and then advance the watermark to
    /// the last completion time — the shape the live monitor uses.
    pub fn feed_slice(&mut self, ops: &[OpRecord]) {
        for op in ops {
            self.feed(op);
        }
        if let Some(last) = ops.last() {
            self.advance(Watermark::at(last.completed));
        }
    }

    /// Advance the watermark on every operator, evicting what the
    /// window allows.
    pub fn advance(&mut self, wm: Watermark) {
        self.session.advance(wm);
        self.staleness.advance(wm);
        self.monotonic.advance(wm);
        self.convergence.advance(wm);
        let total = self.events_evicted();
        if let Some(rec) = &self.recorder {
            if total > self.reported_evicted {
                rec.count(Counter::CheckerEventsEvicted, total - self.reported_evicted);
            }
        }
        self.reported_evicted = total;
    }

    /// Total state entries evicted across all operators so far.
    pub fn events_evicted(&self) -> u64 {
        self.session.events_evicted()
            + self.staleness.events_evicted()
            + self.monotonic.events_evicted()
            + self.convergence.events_evicted()
    }

    /// Violations flagged so far, in feed order.
    pub fn violations(&self) -> &[StreamViolation] {
        &self.violations
    }

    /// Finish the stream: classify convergence, append divergence
    /// findings to the violation log, and return every report.
    pub fn finish(mut self) -> StreamReports {
        let convergence = self.convergence.report();
        if let Some(report) = &convergence {
            let mut fresh = 0;
            for d in &report.diverged {
                self.violations.push(StreamViolation {
                    kind: ViolationKind::Divergence,
                    session: 0,
                    op_id: 0,
                    key: d.key,
                    t_us: report.quiescence_at.as_micros(),
                });
                fresh += 1;
            }
            if let (Some(rec), true) = (&self.recorder, fresh > 0) {
                rec.count(Counter::StreamViolations, fresh);
            }
        }
        let events_evicted = self.events_evicted();
        StreamReports {
            session: self.session.into_report(),
            staleness: self.staleness.into_report(),
            monotonic: self.monotonic.into_report(),
            convergence,
            violations: self.violations,
            events_evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::check_convergence;
    use crate::monotonic::check_monotonic_values;
    use crate::session::check_session_guarantees;
    use crate::staleness::measure_staleness;
    use simnet::{NodeId, OpTrace};

    #[allow(clippy::too_many_arguments)]
    fn op(
        session: u64,
        op_id: u64,
        key: u64,
        kind: OpKind,
        stamp: Option<(u64, u64)>,
        values: Vec<u64>,
        invoked_ms: u64,
        completed_ms: u64,
        replica: u32,
    ) -> OpRecord {
        OpRecord {
            session,
            op_id,
            key,
            kind,
            value_written: (kind == OpKind::Write).then_some(op_id),
            value_read: values,
            invoked: SimTime::from_millis(invoked_ms),
            completed: SimTime::from_millis(completed_ms),
            replica: NodeId(replica),
            ok: true,
            version_ts: None,
            stamp,
        }
    }

    /// A small mixed trace with RYW, staleness, value-regression, and
    /// divergence problems.
    fn anomalous_trace() -> OpTrace {
        let mut t = OpTrace::new();
        t.push(op(1, 1, 5, OpKind::Write, Some((10, 0)), vec![], 9, 10, 0));
        t.push(op(2, 1, 5, OpKind::Read, Some((10, 0)), vec![10], 19, 20, 0));
        // Session 1 reads an older version than its own write: RYW, and
        // a stale read (the (10,0) write was acked at 10ms).
        t.push(op(1, 2, 5, OpKind::Read, Some((4, 0)), vec![4], 30, 31, 1));
        // Session 2's counter goes backwards.
        t.push(op(2, 2, 5, OpKind::Read, Some((10, 0)), vec![4], 40, 41, 1));
        // Post-quiescence reads disagree between replicas.
        t.push(op(3, 1, 5, OpKind::Read, Some((10, 0)), vec![10], 600, 601, 0));
        t.push(op(4, 1, 5, OpKind::Read, Some((4, 0)), vec![4], 610, 611, 1));
        t.sort_by_completion();
        t
    }

    fn feed_all(verifier: &mut StreamVerifier, trace: &OpTrace) {
        for r in trace.records() {
            verifier.feed(r);
        }
    }

    #[test]
    fn unbounded_stream_matches_batch_reports_exactly() {
        let trace = anomalous_trace();
        let grace = Duration::from_millis(500);
        let mut v = StreamVerifier::new(StreamConfig { grace, ..StreamConfig::default() });
        feed_all(&mut v, &trace);
        let reports = v.finish();
        assert_eq!(reports.session, check_session_guarantees(&trace));
        assert_eq!(reports.staleness, measure_staleness(&trace));
        assert_eq!(reports.monotonic, check_monotonic_values(&trace));
        assert_eq!(reports.convergence, check_convergence(&trace, grace));
        assert_eq!(
            reports.events_evicted, 0,
            "unbounded run with one leading write evicts nothing"
        );
    }

    #[test]
    fn violations_are_flagged_online_with_kinds() {
        let trace = anomalous_trace();
        let mut v = StreamVerifier::new(StreamConfig::default());
        feed_all(&mut v, &trace);
        let reports = v.finish();
        let kinds: Vec<ViolationKind> = reports.violations.iter().map(|x| x.kind).collect();
        assert!(kinds.contains(&ViolationKind::ReadYourWrites));
        assert!(kinds.contains(&ViolationKind::StaleRead));
        assert!(kinds.contains(&ViolationKind::ValueRegression));
        assert!(kinds.contains(&ViolationKind::Divergence));
        assert!(!reports.convergence.unwrap().converged());
    }

    #[test]
    fn recorder_export_counts_violations_and_evictions() {
        let trace = anomalous_trace();
        let rec = Recorder::enabled();
        let mut v = StreamVerifier::new(StreamConfig {
            window: Some(Duration::from_millis(1)),
            ..StreamConfig::default()
        })
        .with_recorder(rec.clone());
        for r in trace.records() {
            v.feed(r);
            v.advance(Watermark::at(r.completed));
        }
        let reports = v.finish();
        let metrics = rec.report();
        let get = |name: &str| {
            metrics.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
        };
        assert_eq!(get("stream_violations"), reports.violations.len() as u64);
        assert_eq!(get("checker_events_evicted"), reports.events_evicted);
        assert!(reports.events_evicted > 0, "tight window must evict something");
    }

    #[test]
    fn bounded_window_only_under_reports() {
        let trace = anomalous_trace();
        let mut exact = StreamVerifier::new(StreamConfig::default());
        feed_all(&mut exact, &trace);
        let exact = exact.finish();

        let mut bounded = StreamVerifier::new(StreamConfig {
            window: Some(Duration::from_millis(5)),
            ..StreamConfig::default()
        });
        for r in trace.records() {
            bounded.feed(r);
            bounded.advance(Watermark::at(r.completed));
        }
        let bounded = bounded.finish();
        assert!(bounded.session.ryw_violations <= exact.session.ryw_violations);
        assert!(bounded.session.mr_violations <= exact.session.mr_violations);
        assert!(bounded.staleness.stale_reads <= exact.staleness.stale_reads);
        assert!(bounded.monotonic.violations <= exact.monotonic.violations);
    }

    #[test]
    fn violations_inside_window_are_still_caught() {
        // Cause (the write) and effect (the stale RYW read) are 21ms
        // apart; a 100ms window must keep the evidence.
        let mut t = OpTrace::new();
        t.push(op(1, 1, 5, OpKind::Write, Some((10, 0)), vec![], 9, 10, 0));
        t.push(op(1, 2, 5, OpKind::Read, Some((4, 0)), vec![4], 30, 31, 1));
        t.sort_by_completion();
        let mut v = StreamVerifier::new(StreamConfig {
            window: Some(Duration::from_millis(100)),
            ..StreamConfig::default()
        });
        for r in t.records() {
            v.feed(r);
            v.advance(Watermark::at(r.completed));
        }
        let reports = v.finish();
        assert_eq!(reports.session.ryw_violations, 1);
        assert_eq!(reports.staleness.stale_reads, 1);
    }

    #[test]
    fn convergence_stream_requires_nonzero_grace() {
        let result = std::panic::catch_unwind(|| ConvergenceStream::new(Duration::ZERO));
        assert!(result.is_err());
    }

    #[test]
    fn feed_slice_advances_watermark() {
        let trace = anomalous_trace();
        let mut v = StreamVerifier::new(StreamConfig {
            window: Some(Duration::from_millis(1)),
            ..StreamConfig::default()
        });
        v.feed_slice(trace.records());
        assert!(v.events_evicted() > 0);
    }
}
