//! Utility-maximizing target selection and post-hoc scoring.

use crate::monitor::Monitor;
use crate::types::{Consistency, SessionState, Sla};
use serde::{Deserialize, Serialize};
use simnet::{Duration, NodeId, SimTime};

/// The chosen `(replica, sub-SLA)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Replica to send the read to.
    pub replica: NodeId,
    /// Index of the sub-SLA the choice is optimizing for.
    pub sub_index: usize,
    /// Expected utility of the choice.
    pub expected_utility: f64,
}

/// Can `replica` (per the monitor's knowledge) serve consistency `c` for
/// this session right now?
fn can_serve(
    monitor: &Monitor,
    replica: NodeId,
    c: Consistency,
    session: &SessionState,
    now: SimTime,
) -> bool {
    let view = monitor.view(replica);
    match c {
        Consistency::Strong => view.is_primary,
        other => match session.required_ts(other, now) {
            None => true,
            Some(need) => view.high_ts >= need,
        },
    }
}

/// Pick the replica with maximum expected *delivered* utility.
///
/// The expectation models the full sub-SLA cascade: one latency draw from
/// the replica's empirical RTT window is scored by the first sub-SLA whose
/// latency target it meets **and** whose consistency the replica can serve
/// (per the monitor's high-timestamp knowledge) — exactly how
/// [`delivered_utility`] will score the real read afterwards. Replicas
/// with no samples yet get a hedged prior (half the utility of their best
/// achievable sub-SLA) so unexplored replicas are not starved forever.
/// Near-ties break toward the lower-median-RTT replica, then lower id.
pub fn choose(monitor: &Monitor, sla: &Sla, session: &SessionState, now: SimTime) -> Decision {
    let mut best: Option<(Decision, Duration)> = None;
    for (replica, view) in monitor.iter() {
        let achievable: Vec<bool> = sla
            .subs()
            .iter()
            .map(|sub| can_serve(monitor, replica, sub.consistency, session, now))
            .collect();
        let first_achievable = achievable.iter().position(|&a| a);
        let score_one = |lat: Duration| -> f64 {
            for (i, sub) in sla.subs().iter().enumerate() {
                if achievable[i] && lat <= sub.latency {
                    return sub.utility;
                }
            }
            0.0
        };
        let samples = view.rtt_samples();
        let eu = if samples.is_empty() {
            // Hedged prior for unexplored replicas.
            first_achievable.map(|i| 0.5 * sla.subs()[i].utility).unwrap_or(0.0)
        } else {
            samples.iter().map(|&s| score_one(s)).sum::<f64>() / samples.len() as f64
        };
        if eu <= 0.0 {
            continue;
        }
        let sub_index = first_achievable.unwrap_or(sla.subs().len() - 1);
        let med = view.median_rtt().unwrap_or(Duration::from_millis(1_000));
        let better = match &best {
            None => true,
            Some((b, b_med)) => {
                eu > b.expected_utility + 1e-12
                    || ((eu - b.expected_utility).abs() <= 1e-12 && med < *b_med)
            }
        };
        if better {
            best = Some((Decision { replica, sub_index, expected_utility: eu }, med));
        }
    }
    let best = best.map(|(d, _)| d);
    // Fall back to the last (weakest) sub-SLA at the replica with the best
    // latency odds — there is always somewhere to send an eventual read.
    best.unwrap_or_else(|| {
        let last = sla.subs().len() - 1;
        let target = sla.subs()[last].latency;
        let replica = monitor
            .iter()
            .max_by(|(a_id, a), (b_id, b)| {
                a.p_latency(target)
                    .partial_cmp(&b.p_latency(target))
                    .unwrap()
                    .then(b_id.0.cmp(&a_id.0))
            })
            .map(|(id, _)| id)
            .expect("monitor has replicas");
        Decision { replica, sub_index: last, expected_utility: 0.0 }
    })
}

/// Score what actually happened: the utility of the *first* (highest
/// preference) sub-SLA whose latency target and consistency were both
/// met. `achieved` is the strongest consistency the response actually
/// provided (derived from which replica answered and its high timestamp).
pub fn delivered_utility(
    sla: &Sla,
    actual_latency: Duration,
    achieved: &dyn Fn(Consistency) -> bool,
) -> f64 {
    for sub in sla.subs() {
        if actual_latency <= sub.latency && achieved(sub.consistency) {
            return sub.utility;
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SubSla;

    fn monitor_with(rtts_ms: &[(u32, u64)], high_ts_ms: &[(u32, u64)], n: usize) -> Monitor {
        let mut m = Monitor::new(n, NodeId(0));
        for &(r, ms) in rtts_ms {
            for _ in 0..8 {
                m.view_mut(NodeId(r)).record_rtt(Duration::from_millis(ms));
            }
        }
        for &(r, ms) in high_ts_ms {
            m.view_mut(NodeId(r)).high_ts = SimTime::from_millis(ms);
        }
        m
    }

    #[test]
    fn strong_sla_goes_to_primary() {
        // Replica 1 is much faster, but only the primary (0) serves Strong.
        let m = monitor_with(&[(0, 100), (1, 5)], &[(0, 1000), (1, 1000)], 2);
        let sla = Sla::new(vec![SubSla {
            consistency: Consistency::Strong,
            latency: Duration::from_millis(500),
            utility: 1.0,
        }]);
        let d = choose(&m, &sla, &SessionState::default(), SimTime::from_millis(2000));
        assert_eq!(d.replica, NodeId(0));
        assert_eq!(d.sub_index, 0);
    }

    #[test]
    fn latency_preferred_sla_picks_fast_replica() {
        let m = monitor_with(&[(0, 100), (1, 5)], &[(0, 1000), (1, 900)], 2);
        let sla = Sla::shopping_cart();
        // Fresh session: RMW has no requirement, so the fast replica wins.
        let d = choose(&m, &sla, &SessionState::default(), SimTime::from_millis(2000));
        assert_eq!(d.replica, NodeId(1));
        assert_eq!(d.sub_index, 0);
        assert!(d.expected_utility > 0.9);
    }

    #[test]
    fn rmw_requirement_excludes_lagging_replica() {
        // Session wrote at t=950; replica 1 lags (high_ts 900) so only the
        // primary can give RMW. Expected utility trade-off: primary RMW
        // (1.0 × P(100ms ≤ 300ms) = 1.0) beats replica-1 eventual (0.5).
        let m = monitor_with(&[(0, 100), (1, 5)], &[(0, 1000), (1, 900)], 2);
        let sla = Sla::shopping_cart();
        let session =
            SessionState { last_write_ts: Some(SimTime::from_millis(950)), last_read_ts: None };
        let d = choose(&m, &sla, &session, SimTime::from_millis(2000));
        assert_eq!(d.replica, NodeId(0));
        assert_eq!(d.sub_index, 0);
    }

    #[test]
    fn hopeless_latency_falls_to_weaker_subsla() {
        // Primary is way too slow for the strong sub-SLA's 50ms target;
        // the bounded sub-SLA at the fast replica wins.
        let m = monitor_with(&[(0, 400), (1, 10)], &[(0, 10_000), (1, 9_950)], 2);
        let sla = Sla::web_app();
        let d = choose(&m, &sla, &SessionState::default(), SimTime::from_millis(10_000));
        assert_eq!(d.replica, NodeId(1));
        assert_eq!(d.sub_index, 1, "bounded sub-SLA chosen");
        assert!((d.expected_utility - 0.7).abs() < 1e-9);
    }

    #[test]
    fn bounded_staleness_excludes_stale_replica() {
        // Bound 200ms at now=10s requires high_ts >= 9.8s; replica 1 is at
        // 9.0s → excluded; primary (fresh) serves it.
        let m = monitor_with(&[(0, 10), (1, 10)], &[(0, 10_000), (1, 9_000)], 2);
        let sla = Sla::new(vec![SubSla {
            consistency: Consistency::Bounded(Duration::from_millis(200)),
            latency: Duration::from_millis(100),
            utility: 1.0,
        }]);
        let d = choose(&m, &sla, &SessionState::default(), SimTime::from_secs(10));
        assert_eq!(d.replica, NodeId(0));
    }

    #[test]
    fn fallback_when_nothing_qualifies() {
        // Strong-only SLA but no replica is primary-marked... construct by
        // demanding RMW with a requirement nobody meets.
        let m = monitor_with(&[(0, 10), (1, 10)], &[(0, 100), (1, 100)], 2);
        let sla = Sla::new(vec![SubSla {
            consistency: Consistency::ReadMyWrites,
            latency: Duration::from_millis(100),
            utility: 1.0,
        }]);
        let session =
            SessionState { last_write_ts: Some(SimTime::from_secs(99)), last_read_ts: None };
        let d = choose(&m, &sla, &session, SimTime::from_secs(100));
        // Falls back to the weakest (here: only) sub-SLA with zero
        // expected utility rather than panicking.
        assert_eq!(d.expected_utility, 0.0);
        assert_eq!(d.sub_index, 0);
    }

    #[test]
    fn delivered_utility_picks_first_met_subsla() {
        let sla = Sla::web_app();
        // Fast and strong: full utility.
        let u = delivered_utility(&sla, Duration::from_millis(40), &|_| true);
        assert!((u - 1.0).abs() < 1e-9);
        // Fast but only eventual-achievable: the eventual rung (0.3).
        let u2 = delivered_utility(&sla, Duration::from_millis(40), &|c| {
            matches!(c, Consistency::Eventual)
        });
        assert!((u2 - 0.3).abs() < 1e-9);
        // Too slow for everything: zero.
        let u3 = delivered_utility(&sla, Duration::from_millis(900), &|_| true);
        assert_eq!(u3, 0.0);
    }
}
