//! SLA vocabulary: consistency levels, sub-SLAs, portfolios.

use serde::{Deserialize, Serialize};
use simnet::{Duration, SimTime};

/// The consistency a read may request (Pileus's ladder).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Consistency {
    /// Read the newest committed data (primary only).
    Strong,
    /// Reads reflect this session's writes.
    ReadMyWrites,
    /// Reads never go backwards for this session.
    MonotonicReads,
    /// Data no staler than this bound.
    Bounded(Duration),
    /// Any replica, any staleness.
    Eventual,
}

impl Consistency {
    /// A strength rank for comparisons (higher = stronger). Bounded ranks
    /// between session guarantees and eventual, tighter bounds stronger.
    pub fn rank(&self) -> u32 {
        match self {
            Consistency::Strong => 4,
            Consistency::ReadMyWrites => 3,
            Consistency::MonotonicReads => 2,
            Consistency::Bounded(_) => 1,
            Consistency::Eventual => 0,
        }
    }
}

/// One `(consistency, latency, utility)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubSla {
    /// Required consistency.
    pub consistency: Consistency,
    /// Latency target for the read.
    pub latency: Duration,
    /// Utility delivered if both are met.
    pub utility: f64,
}

/// An ordered portfolio of sub-SLAs (first = most preferred).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sla {
    subs: Vec<SubSla>,
}

impl Sla {
    /// Build a portfolio.
    ///
    /// # Panics
    /// If empty, if utilities are not strictly decreasing (Pileus requires
    /// earlier sub-SLAs to be worth more), or if any utility is negative.
    pub fn new(subs: Vec<SubSla>) -> Self {
        assert!(!subs.is_empty(), "an SLA needs at least one sub-SLA");
        assert!(subs.iter().all(|s| s.utility >= 0.0), "utilities must be non-negative");
        assert!(
            subs.windows(2).all(|w| w[0].utility > w[1].utility),
            "utilities must be strictly decreasing"
        );
        Sla { subs }
    }

    /// The sub-SLAs in preference order.
    pub fn subs(&self) -> &[SubSla] {
        &self.subs
    }

    /// The paper's *password-checking* SLA: strong or nothing.
    pub fn password() -> Self {
        Sla::new(vec![
            SubSla {
                consistency: Consistency::Strong,
                latency: Duration::from_millis(1_000),
                utility: 1.0,
            },
            SubSla {
                consistency: Consistency::Eventual,
                latency: Duration::from_millis(1_000),
                utility: 0.0,
            },
        ])
    }

    /// The paper's *shopping-cart* SLA: read-my-writes fast, else eventual.
    pub fn shopping_cart() -> Self {
        Sla::new(vec![
            SubSla {
                consistency: Consistency::ReadMyWrites,
                latency: Duration::from_millis(300),
                utility: 1.0,
            },
            SubSla {
                consistency: Consistency::Eventual,
                latency: Duration::from_millis(300),
                utility: 0.5,
            },
        ])
    }

    /// The paper's *web-application* SLA: a graded ladder.
    pub fn web_app() -> Self {
        Sla::new(vec![
            SubSla {
                consistency: Consistency::Strong,
                latency: Duration::from_millis(50),
                utility: 1.0,
            },
            SubSla {
                consistency: Consistency::Bounded(Duration::from_millis(200)),
                latency: Duration::from_millis(100),
                utility: 0.7,
            },
            SubSla {
                consistency: Consistency::Eventual,
                latency: Duration::from_millis(250),
                utility: 0.3,
            },
        ])
    }
}

/// What a session remembers for RMW / monotonic checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionState {
    /// Commit timestamp of the session's last write (µs of sim time), if
    /// any.
    pub last_write_ts: Option<SimTime>,
    /// Timestamp of the newest version the session has read.
    pub last_read_ts: Option<SimTime>,
}

impl SessionState {
    /// The minimum replica high-timestamp this session needs for `c`.
    /// `None` = no requirement beyond reachability. `now` is used for
    /// bounded staleness.
    pub fn required_ts(&self, c: Consistency, now: SimTime) -> Option<SimTime> {
        match c {
            Consistency::Strong => None, // handled via "primary only"
            Consistency::ReadMyWrites => self.last_write_ts,
            Consistency::MonotonicReads => self.last_read_ts,
            Consistency::Bounded(b) => {
                Some(SimTime::from_micros(now.as_micros().saturating_sub(b.as_micros())))
            }
            Consistency::Eventual => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert_eq!(Sla::password().subs().len(), 2);
        assert_eq!(Sla::shopping_cart().subs().len(), 2);
        assert_eq!(Sla::web_app().subs().len(), 3);
    }

    #[test]
    fn ranks_order_the_ladder() {
        assert!(Consistency::Strong.rank() > Consistency::ReadMyWrites.rank());
        assert!(Consistency::ReadMyWrites.rank() > Consistency::MonotonicReads.rank());
        assert!(
            Consistency::MonotonicReads.rank()
                > Consistency::Bounded(Duration::from_millis(1)).rank()
        );
        assert!(
            Consistency::Bounded(Duration::from_millis(1)).rank() > Consistency::Eventual.rank()
        );
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn non_decreasing_utilities_rejected() {
        Sla::new(vec![
            SubSla {
                consistency: Consistency::Eventual,
                latency: Duration::from_millis(1),
                utility: 0.5,
            },
            SubSla {
                consistency: Consistency::Strong,
                latency: Duration::from_millis(1),
                utility: 0.5,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_sla_rejected() {
        Sla::new(vec![]);
    }

    #[test]
    fn required_ts_per_level() {
        let s = SessionState {
            last_write_ts: Some(SimTime::from_millis(100)),
            last_read_ts: Some(SimTime::from_millis(80)),
        };
        let now = SimTime::from_millis(500);
        assert_eq!(s.required_ts(Consistency::Eventual, now), None);
        assert_eq!(s.required_ts(Consistency::ReadMyWrites, now), Some(SimTime::from_millis(100)));
        assert_eq!(s.required_ts(Consistency::MonotonicReads, now), Some(SimTime::from_millis(80)));
        assert_eq!(
            s.required_ts(Consistency::Bounded(Duration::from_millis(200)), now),
            Some(SimTime::from_millis(300))
        );
        // Fresh session: no requirements.
        let fresh = SessionState::default();
        assert_eq!(fresh.required_ts(Consistency::ReadMyWrites, now), None);
    }
}
