//! # sla — consistency-based service level agreements (Pileus-style)
//!
//! Terry et al.'s Pileus system (SOSP 2013) lets an application declare,
//! per read, an ordered list of `(consistency, latency, utility)` triples
//! — a [`Sla`] — and the system picks the replica and sub-SLA that
//! maximize *expected* utility given what it knows about replica lag and
//! round-trip times. This crate reproduces that machinery:
//!
//! * [`Consistency`] — the guarantee ladder (strong, read-my-writes,
//!   monotonic, bounded staleness, eventual).
//! * [`SubSla`] / [`Sla`] — validated utility-ordered portfolios, with the
//!   classic examples from the paper as constructors.
//! * [`Monitor`] — per-replica RTT window and high-timestamp tracking; the
//!   probability model (`P(latency ≤ target)` = empirical fraction).
//! * [`choose`] — the utility-maximizing `(replica, sub-SLA)` selection.
//! * [`delivered_utility`] — post-hoc scoring of what actually happened,
//!   used by experiment E7.

pub mod monitor;
pub mod select;
pub mod types;

pub use monitor::{Monitor, ReplicaView};
pub use select::{choose, delivered_utility, Decision};
pub use types::{Consistency, SessionState, Sla, SubSla};
