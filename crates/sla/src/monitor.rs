//! Replica monitoring: RTT windows and high-timestamp tracking.

use serde::{Deserialize, Serialize};
use simnet::{Duration, NodeId, SimTime};
use std::collections::BTreeMap;

/// What the monitor knows about one replica.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplicaView {
    /// Recent round-trip samples (sliding window).
    rtts: Vec<Duration>,
    /// The replica's last known apply timestamp ("high time"): every write
    /// with commit time `<= high_ts` is visible there.
    pub high_ts: SimTime,
    /// Whether this replica is the primary (serves strong reads).
    pub is_primary: bool,
}

/// Size of the RTT sliding window.
const WINDOW: usize = 64;

impl ReplicaView {
    /// Record an observed round trip.
    pub fn record_rtt(&mut self, rtt: Duration) {
        if self.rtts.len() == WINDOW {
            self.rtts.remove(0);
        }
        self.rtts.push(rtt);
    }

    /// Empirical probability that a read here answers within `target`.
    /// With no samples, an optimistic-but-hedged prior of 0.5.
    pub fn p_latency(&self, target: Duration) -> f64 {
        if self.rtts.is_empty() {
            return 0.5;
        }
        let hits = self.rtts.iter().filter(|&&r| r <= target).count();
        hits as f64 / self.rtts.len() as f64
    }

    /// The raw RTT sample window (used by the cascade scorer).
    pub fn rtt_samples(&self) -> &[Duration] {
        &self.rtts
    }

    /// Median observed RTT (None with no samples).
    pub fn median_rtt(&self) -> Option<Duration> {
        if self.rtts.is_empty() {
            return None;
        }
        let mut s = self.rtts.clone();
        s.sort_unstable();
        Some(s[s.len() / 2])
    }
}

/// The client-side monitor over all replicas.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Monitor {
    views: BTreeMap<u32, ReplicaView>,
}

impl Monitor {
    /// Create a monitor for `n` replicas, with `primary` marked.
    pub fn new(n: usize, primary: NodeId) -> Self {
        let mut views = BTreeMap::new();
        for i in 0..n as u32 {
            views.insert(
                i,
                ReplicaView { is_primary: NodeId(i) == primary, ..ReplicaView::default() },
            );
        }
        Monitor { views }
    }

    /// The view of one replica.
    pub fn view(&self, replica: NodeId) -> &ReplicaView {
        &self.views[&replica.0]
    }

    /// Mutable view (record RTTs / high timestamps).
    pub fn view_mut(&mut self, replica: NodeId) -> &mut ReplicaView {
        self.views.get_mut(&replica.0).expect("unknown replica")
    }

    /// Record a completed request's round trip and the high timestamp the
    /// replica reported in its response.
    pub fn observe(&mut self, replica: NodeId, rtt: Duration, high_ts: SimTime) {
        let v = self.view_mut(replica);
        v.record_rtt(rtt);
        v.high_ts = v.high_ts.max(high_ts);
    }

    /// Iterate `(replica, view)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &ReplicaView)> {
        self.views.iter().map(|(&i, v)| (NodeId(i), v))
    }

    /// Number of replicas tracked.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if no replicas are tracked.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_latency_is_empirical_fraction() {
        let mut v = ReplicaView::default();
        for ms in [10u64, 20, 30, 40] {
            v.record_rtt(Duration::from_millis(ms));
        }
        assert_eq!(v.p_latency(Duration::from_millis(25)), 0.5);
        assert_eq!(v.p_latency(Duration::from_millis(40)), 1.0);
        assert_eq!(v.p_latency(Duration::from_millis(5)), 0.0);
    }

    #[test]
    fn no_samples_gives_hedged_prior() {
        let v = ReplicaView::default();
        assert_eq!(v.p_latency(Duration::from_millis(1)), 0.5);
        assert_eq!(v.median_rtt(), None);
    }

    #[test]
    fn window_slides() {
        let mut v = ReplicaView::default();
        for _ in 0..WINDOW {
            v.record_rtt(Duration::from_millis(100));
        }
        for _ in 0..WINDOW {
            v.record_rtt(Duration::from_millis(1));
        }
        assert_eq!(v.p_latency(Duration::from_millis(10)), 1.0, "old samples aged out");
        assert_eq!(v.median_rtt(), Some(Duration::from_millis(1)));
    }

    #[test]
    fn observe_advances_high_ts_monotonically() {
        let mut m = Monitor::new(3, NodeId(0));
        m.observe(NodeId(1), Duration::from_millis(5), SimTime::from_millis(100));
        m.observe(NodeId(1), Duration::from_millis(5), SimTime::from_millis(50));
        assert_eq!(m.view(NodeId(1)).high_ts, SimTime::from_millis(100));
        assert!(m.view(NodeId(0)).is_primary);
        assert!(!m.view(NodeId(1)).is_primary);
        assert_eq!(m.len(), 3);
    }
}
