//! Offline profile analysis: parse the `profile` block out of a results
//! document and answer the `profquery` questions (top-K hot handlers,
//! per-scheme regression diffs, folded-stack re-emission).
//!
//! Profiles are produced by any harness run with `--profile` (see
//! `docs/PROFILING.md`); the canonical checked-in artifact is
//! `results/profile_protos.json` from `simbench --profile`.

use serde::Value;

/// One flattened handler row of a parsed profile: the jobs-invariant
/// measurements plus the host-dependent total wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfRow {
    /// Scheme label the samples were attributed to.
    pub scheme: String,
    /// Actor role (`"replica"`, `"client"`, ...).
    pub role: String,
    /// Handler kind name (`"on_message"`, `"on_timer"`, ...).
    pub handler: String,
    /// Message variant (`"-"` for messageless handlers).
    pub variant: String,
    /// Invocations recorded (jobs-invariant).
    pub invocations: u64,
    /// Gross bytes allocated inside the handler (jobs-invariant).
    pub alloc_bytes: u64,
    /// Gross allocation count (jobs-invariant).
    pub alloc_count: u64,
    /// Total wall nanoseconds (host-dependent; never diffed across
    /// machines, only within one run).
    pub time_total_ns: u64,
}

impl ProfRow {
    /// `role;handler[:variant]` — the same frame syntax the folded
    /// export uses ([`obs::HandlerProfile::frame`]).
    pub fn frame(&self) -> String {
        if self.variant == obs::NO_VARIANT {
            format!("{};{}", self.role, self.handler)
        } else {
            format!("{};{}:{}", self.role, self.handler, self.variant)
        }
    }

    /// The measurement selected by `weight`.
    pub fn weight(&self, weight: obs::FoldWeight) -> u64 {
        match weight {
            obs::FoldWeight::Calls => self.invocations,
            obs::FoldWeight::Time => self.time_total_ns,
            obs::FoldWeight::AllocBytes => self.alloc_bytes,
        }
    }
}

/// Locate the `profile` block in a parsed results document. Accepts any
/// of the shapes a profile travels in:
///
/// * a bare profile object (`{"schemes": [...]}`),
/// * a document with a top-level `profile` member
///   (`results/profile_protos.json`),
/// * a document with `metrics.profile` (the `Obs::save` shape).
pub fn find_profile(doc: &Value) -> Option<&Value> {
    if doc.get("schemes").is_some() {
        return Some(doc);
    }
    if let Some(p) = doc.get("profile") {
        return Some(p);
    }
    doc.get("metrics").and_then(|m| m.get("profile"))
}

/// Parse a results document into flattened profile rows (scheme-major,
/// preserving the deterministic export order).
pub fn parse_profile(text: &str) -> Result<Vec<ProfRow>, String> {
    let doc = serde_json::parse_value(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let profile = find_profile(&doc).ok_or_else(|| {
        "no profile block found (expected `schemes`, `profile`, or `metrics.profile`; \
         was the run made with --profile?)"
            .to_string()
    })?;
    let schemes = profile
        .get("schemes")
        .and_then(|s| s.as_array())
        .ok_or_else(|| "profile block has no `schemes` array".to_string())?;
    let mut rows = Vec::new();
    for scheme in schemes {
        let label = scheme
            .get("scheme")
            .and_then(|s| s.as_str())
            .ok_or_else(|| "scheme entry missing `scheme` label".to_string())?
            .to_string();
        let handlers = scheme
            .get("handlers")
            .and_then(|h| h.as_array())
            .ok_or_else(|| format!("scheme {label:?} missing `handlers` array"))?;
        for h in handlers {
            let s = |k: &str| h.get(k).and_then(|v| v.as_str()).unwrap_or_default().to_string();
            let u = |k: &str| h.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            rows.push(ProfRow {
                scheme: label.clone(),
                role: s("role"),
                handler: s("handler"),
                variant: s("variant"),
                invocations: u("invocations"),
                alloc_bytes: u("alloc_bytes"),
                alloc_count: u("alloc_count"),
                time_total_ns: u("time_total_ns"),
            });
        }
    }
    Ok(rows)
}

/// The top `k` rows by `weight`, heaviest first; ties break on the
/// `scheme;frame` string so the order is deterministic.
pub fn top_rows(rows: &[ProfRow], weight: obs::FoldWeight, k: usize) -> Vec<ProfRow> {
    let mut sorted: Vec<ProfRow> = rows.to_vec();
    sorted.sort_by(|a, b| {
        b.weight(weight).cmp(&a.weight(weight)).then_with(|| {
            format!("{};{}", a.scheme, a.frame()).cmp(&format!("{};{}", b.scheme, b.frame()))
        })
    });
    sorted.truncate(k);
    sorted
}

/// One line of a profile diff: how a `(scheme, frame)` cell moved
/// between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Scheme label.
    pub scheme: String,
    /// `role;handler[:variant]` frame.
    pub frame: String,
    /// The cell's weight in the old run (0 when the cell is new).
    pub old: u64,
    /// The cell's weight in the new run (0 when the cell vanished).
    pub new: u64,
}

impl DiffRow {
    /// Relative change in percent (`+25.0` = new is 25% heavier).
    /// A cell appearing from zero reports `+inf`.
    pub fn pct(&self) -> f64 {
        if self.old == 0 {
            if self.new == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.new as f64 - self.old as f64) / self.old as f64 * 100.0
        }
    }
}

/// Diff two parsed profiles cell-by-cell on `weight`. Returns every
/// `(scheme, frame)` present in either run whose weight changed, sorted
/// by descending relative regression (biggest growth first, ties on the
/// cell name).
pub fn diff_rows(old: &[ProfRow], new: &[ProfRow], weight: obs::FoldWeight) -> Vec<DiffRow> {
    use std::collections::BTreeMap;
    let mut cells: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for r in old {
        cells.entry((r.scheme.clone(), r.frame())).or_default().0 += r.weight(weight);
    }
    for r in new {
        cells.entry((r.scheme.clone(), r.frame())).or_default().1 += r.weight(weight);
    }
    let mut out: Vec<DiffRow> = cells
        .into_iter()
        .filter(|(_, (o, n))| o != n)
        .map(|((scheme, frame), (old, new))| DiffRow { scheme, frame, old, new })
        .collect();
    out.sort_by(|a, b| {
        b.pct().partial_cmp(&a.pct()).unwrap_or(std::cmp::Ordering::Equal).then_with(|| {
            (a.scheme.clone(), a.frame.clone()).cmp(&(b.scheme.clone(), b.frame.clone()))
        })
    });
    out
}

/// Re-emit parsed rows as folded stacks — byte-identical to
/// [`obs::ProfileReport::to_folded`] on the same data: one
/// `scheme;role;handler[:variant] weight` line per non-zero cell,
/// lexicographically sorted, trailing newline.
pub fn to_folded(rows: &[ProfRow], weight: obs::FoldWeight) -> String {
    let mut lines: Vec<String> = rows
        .iter()
        .filter(|r| r.weight(weight) > 0)
        .map(|r| format!("{};{} {}", r.scheme, r.frame(), r.weight(weight)))
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::FoldWeight;

    fn sample_doc() -> String {
        r#"{
            "tool": "simbench",
            "profile": {"schemes": [
                {"scheme": "paxos", "handlers": [
                    {"role": "replica", "handler": "on_message", "variant": "accept",
                     "invocations": 100, "alloc_bytes": 4096, "alloc_count": 10,
                     "time_total_ns": 5000},
                    {"role": "replica", "handler": "on_timer", "variant": "-",
                     "invocations": 7, "alloc_bytes": 0, "alloc_count": 0,
                     "time_total_ns": 900}
                ]},
                {"scheme": "causal", "handlers": [
                    {"role": "client", "handler": "on_message", "variant": "get_resp",
                     "invocations": 40, "alloc_bytes": 512, "alloc_count": 4,
                     "time_total_ns": 100}
                ]}
            ]}
        }"#
        .to_string()
    }

    #[test]
    fn parses_all_three_document_shapes() {
        let rows = parse_profile(&sample_doc()).expect("top-level profile parses");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].frame(), "replica;on_message:accept");
        assert_eq!(rows[1].frame(), "replica;on_timer");

        // Bare profile object.
        let doc = serde_json::parse_value(&sample_doc()).unwrap();
        let bare = doc.get("profile").unwrap().to_json();
        assert_eq!(parse_profile(&bare).unwrap(), rows);

        // Nested under metrics (the `Obs::save` shape).
        let nested = format!(r#"{{"rows": [], "metrics": {{"profile": {bare}}}}}"#);
        assert_eq!(parse_profile(&nested).unwrap(), rows);

        assert!(parse_profile(r#"{"rows": []}"#).is_err());
        assert!(parse_profile("not json").is_err());
    }

    #[test]
    fn top_sorts_by_weight_with_deterministic_ties() {
        let rows = parse_profile(&sample_doc()).unwrap();
        let by_calls = top_rows(&rows, FoldWeight::Calls, 2);
        assert_eq!(by_calls[0].invocations, 100);
        assert_eq!(by_calls[1].invocations, 40);
        let by_time = top_rows(&rows, FoldWeight::Time, 3);
        assert_eq!(by_time[2].time_total_ns, 100);
    }

    #[test]
    fn diff_reports_regressions_first() {
        let old = parse_profile(&sample_doc()).unwrap();
        let mut new = old.clone();
        new[2].invocations = 80; // causal doubled
        new[0].invocations = 90; // paxos accept shrank 10%
        let d = diff_rows(&old, &new, FoldWeight::Calls);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].scheme, "causal");
        assert!((d[0].pct() - 100.0).abs() < 1e-9);
        assert!((d[1].pct() + 10.0).abs() < 1e-9);
        // Unchanged cells are omitted.
        assert!(d.iter().all(|r| r.frame != "replica;on_timer"));
    }

    #[test]
    fn folded_matches_recorder_export_shape() {
        let rows = parse_profile(&sample_doc()).unwrap();
        let folded = to_folded(&rows, FoldWeight::Calls);
        assert_eq!(
            folded,
            "causal;client;on_message:get_resp 40\n\
             paxos;replica;on_message:accept 100\n\
             paxos;replica;on_timer 7\n"
        );
        // Zero-weight cells are skipped.
        let by_alloc = to_folded(&rows, FoldWeight::AllocBytes);
        assert!(!by_alloc.contains("on_timer"));
    }
}
