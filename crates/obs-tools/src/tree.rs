//! Reconstruct per-operation span trees from a parsed event log.
//!
//! Span ids are allocated serially in event-processing order, so within
//! one trace the open order is also span-id order; trees render
//! deterministically for a given trace file.

use consistency::{all_spans, SpanAt};
use obs::TracedEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One span plus its child spans (children sorted by span id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span itself.
    pub span: SpanAt,
    /// Spans whose `parent` is this span.
    pub children: Vec<SpanNode>,
}

/// The span tree of one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// The trace id.
    pub trace: u64,
    /// Root spans (`parent == 0`, or parent missing from the log).
    pub roots: Vec<SpanNode>,
    /// Total spans in the trace.
    pub span_count: usize,
}

fn build_node(span: SpanAt, children_of: &mut BTreeMap<u64, Vec<SpanAt>>) -> SpanNode {
    let children = children_of
        .remove(&span.span)
        .unwrap_or_default()
        .into_iter()
        .map(|c| build_node(c, children_of))
        .collect();
    SpanNode { span, children }
}

/// Build the span tree of `trace_id`. Returns `None` when the log has no
/// spans for that trace.
pub fn build_tree(events: &[TracedEvent], trace_id: u64) -> Option<SpanTree> {
    let spans: Vec<SpanAt> =
        all_spans(events).into_iter().filter(|s| s.trace == trace_id).collect();
    if spans.is_empty() {
        return None;
    }
    let span_count = spans.len();
    let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
    let mut roots: Vec<SpanAt> = Vec::new();
    let mut children_of: BTreeMap<u64, Vec<SpanAt>> = BTreeMap::new();
    for s in spans {
        // A span whose parent never opened in this trace (e.g. a log
        // truncated at a window boundary) is shown as a root rather
        // than dropped.
        if s.parent == 0 || !known.contains(&s.parent) {
            roots.push(s);
        } else {
            children_of.entry(s.parent).or_default().push(s);
        }
    }
    let roots = roots.into_iter().map(|r| build_node(r, &mut children_of)).collect();
    Some(SpanTree { trace: trace_id, roots, span_count })
}

fn render_node(out: &mut String, node: &SpanNode, prefix: &str, last: bool) {
    let bounds = match node.span.close_t_us {
        Some(close) => format!("[{}..{}µs]", node.span.open_t_us, close),
        None => format!("[{}..?µs]", node.span.open_t_us),
    };
    let status = node.span.status.as_deref().unwrap_or("open");
    let _ = writeln!(
        out,
        "{prefix}{}{} #{} node={} {bounds} {status}",
        if last { "└── " } else { "├── " },
        node.span.name,
        node.span.span,
        node.span.node,
    );
    let child_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
    for (i, child) in node.children.iter().enumerate() {
        render_node(out, child, &child_prefix, i + 1 == node.children.len());
    }
}

/// Render a span tree as indented ASCII, one span per line.
pub fn render_tree(tree: &SpanTree) -> String {
    let mut out = format!("trace {} ({} span(s))\n", tree.trace, tree.span_count);
    for (i, root) in tree.roots.iter().enumerate() {
        render_node(&mut out, root, "", i + 1 == tree.roots.len());
    }
    out
}

/// One line of `tracequery list`: a trace and its shape at a glance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace id.
    pub trace: u64,
    /// Name of the first root span (the operation name).
    pub root_name: String,
    /// Total spans in the trace.
    pub spans: usize,
    /// Earliest span open (µs).
    pub open_t_us: u64,
    /// Latest span close in the log (µs), if any span closed.
    pub close_t_us: Option<u64>,
    /// Status of the root span, if closed.
    pub status: Option<String>,
}

/// Summarize every trace in the log, in trace-id order.
pub fn trace_summaries(events: &[TracedEvent]) -> Vec<TraceSummary> {
    let mut by_trace: BTreeMap<u64, Vec<SpanAt>> = BTreeMap::new();
    for s in all_spans(events) {
        by_trace.entry(s.trace).or_default().push(s);
    }
    by_trace
        .into_iter()
        .map(|(trace, spans)| TraceSummary {
            trace,
            root_name: spans
                .iter()
                .find(|s| s.parent == 0)
                .or(spans.first())
                .map(|s| s.name.clone())
                .unwrap_or_default(),
            spans: spans.len(),
            open_t_us: spans.iter().map(|s| s.open_t_us).min().unwrap_or(0),
            close_t_us: spans.iter().map(|s| s.close_t_us).max().flatten(),
            status: spans.iter().find(|s| s.parent == 0).and_then(|s| s.status.clone()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{EventKind, SpanStatus};

    fn ev(seq: u64, t_us: u64, kind: EventKind) -> TracedEvent {
        TracedEvent { seq, t_us, kind }
    }

    fn sample_events() -> Vec<TracedEvent> {
        vec![
            ev(0, 100, EventKind::SpanOpen { trace: 7, span: 1, parent: 0, node: 9, name: "op" }),
            ev(
                1,
                150,
                EventKind::SpanOpen { trace: 7, span: 2, parent: 1, node: 0, name: "coord" },
            ),
            ev(
                2,
                200,
                EventKind::SpanOpen { trace: 7, span: 3, parent: 2, node: 1, name: "replica" },
            ),
            ev(3, 210, EventKind::SpanClose { trace: 7, span: 3, node: 1, status: SpanStatus::Ok }),
            ev(4, 300, EventKind::SpanClose { trace: 7, span: 2, node: 0, status: SpanStatus::Ok }),
            ev(5, 320, EventKind::SpanClose { trace: 7, span: 1, node: 9, status: SpanStatus::Ok }),
            ev(6, 400, EventKind::SpanOpen { trace: 8, span: 4, parent: 0, node: 9, name: "op" }),
        ]
    }

    #[test]
    fn builds_nested_tree() {
        let tree = build_tree(&sample_events(), 7).unwrap();
        assert_eq!(tree.span_count, 3);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].span.name, "op");
        assert_eq!(tree.roots[0].children[0].span.name, "coord");
        assert_eq!(tree.roots[0].children[0].children[0].span.name, "replica");
        assert!(build_tree(&sample_events(), 99).is_none());

        let rendered = render_tree(&tree);
        assert!(rendered.contains("trace 7 (3 span(s))"));
        assert!(rendered.contains("op #1 node=9 [100..320µs] ok"));
        assert!(rendered.contains("replica #3 node=1 [200..210µs] ok"));
    }

    #[test]
    fn orphan_parent_becomes_root() {
        let events = vec![ev(
            0,
            50,
            EventKind::SpanOpen { trace: 7, span: 2, parent: 1, node: 0, name: "stray" },
        )];
        let tree = build_tree(&events, 7).unwrap();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].span.name, "stray");
    }

    #[test]
    fn summaries_cover_every_trace() {
        let sums = trace_summaries(&sample_events());
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].trace, 7);
        assert_eq!(sums[0].spans, 3);
        assert_eq!(sums[0].root_name, "op");
        assert_eq!(sums[0].close_t_us, Some(320));
        assert_eq!(sums[0].status.as_deref(), Some("ok"));
        assert_eq!(sums[1].trace, 8);
        assert_eq!(sums[1].close_t_us, None);
    }
}
