//! Parse a JSONL trace file back into [`obs::TracedEvent`] values.
//!
//! The encoder ([`obs::TracedEvent::to_json_line`]) writes one JSON
//! object per line with a fixed field order; the parser here accepts
//! any field order (it reads by name) but insists on the documented
//! field *set* per event type, so a malformed or truncated trace fails
//! loudly instead of silently skewing analysis.

use obs::{ClientOpKind, DropReason, EventKind, QuorumKind, SpanStatus, TracedEvent};
use serde_json::Value;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Mutex;

/// A trace line that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Intern a step name so the parsed log can share
/// [`obs::EventKind::SpanOpen`]'s `&'static str` field with in-process
/// recording. The name set of a run is small and static, so each unique
/// name leaks exactly once for the life of the process.
fn intern(name: &str) -> &'static str {
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERNED.lock().unwrap();
    if let Some(&s) = set.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

fn u64_field(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{name}`"))
}

fn str_field<'a>(v: &'a Value, name: &str) -> Result<&'a str, String> {
    v.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field `{name}`"))
}

fn bool_field(v: &Value, name: &str) -> Result<bool, String> {
    match v.get(name) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean field `{name}`")),
    }
}

/// An optional integer field: absent is `None`, present-but-malformed
/// is an error (a half-written trace must not silently degrade).
fn opt_u64_field(v: &Value, name: &str) -> Result<Option<u64>, String> {
    match v.get(name) {
        None => Ok(None),
        Some(f) => f.as_u64().map(Some).ok_or_else(|| format!("non-integer field `{name}`")),
    }
}

fn u64_array_field(v: &Value, name: &str) -> Result<Vec<u64>, String> {
    v.get(name)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing or non-array field `{name}`"))?
        .iter()
        .map(|n| n.as_u64().ok_or_else(|| format!("non-integer element in `{name}`")))
        .collect()
}

fn parse_kind(v: &Value) -> Result<EventKind, String> {
    let ty = str_field(v, "type")?;
    let kind = match ty {
        "message_sent" => EventKind::MessageSent {
            from: u64_field(v, "from")?,
            to: u64_field(v, "to")?,
            bytes: u64_field(v, "bytes")?,
            trace: u64_field(v, "trace")?,
            span: u64_field(v, "span")?,
        },
        "message_delivered" => EventKind::MessageDelivered {
            from: u64_field(v, "from")?,
            to: u64_field(v, "to")?,
            bytes: u64_field(v, "bytes")?,
            trace: u64_field(v, "trace")?,
            span: u64_field(v, "span")?,
        },
        "message_dropped" => EventKind::MessageDropped {
            from: u64_field(v, "from")?,
            to: u64_field(v, "to")?,
            reason: match str_field(v, "reason")? {
                "partition" => DropReason::Partition,
                "loss" => DropReason::Loss,
                "crashed_destination" => DropReason::CrashedDestination,
                "shutdown" => DropReason::Shutdown,
                other => return Err(format!("unknown drop reason `{other}`")),
            },
            trace: u64_field(v, "trace")?,
            span: u64_field(v, "span")?,
        },
        "anti_entropy_round" => EventKind::AntiEntropyRound {
            node: u64_field(v, "node")?,
            fanout: u64_field(v, "fanout")?,
        },
        "quorum_wait" => EventKind::QuorumWait {
            node: u64_field(v, "node")?,
            kind: match str_field(v, "kind")? {
                "read" => QuorumKind::Read,
                "write" => QuorumKind::Write,
                other => return Err(format!("unknown quorum kind `{other}`")),
            },
            waited_us: u64_field(v, "waited_us")?,
            acks: u64_field(v, "acks")?,
            needed: u64_field(v, "needed")?,
        },
        "conflict_detected" => EventKind::ConflictDetected {
            node: u64_field(v, "node")?,
            key: u64_field(v, "key")?,
            siblings: u64_field(v, "siblings")?,
        },
        "conflict_resolved" => EventKind::ConflictResolved {
            node: u64_field(v, "node")?,
            key: u64_field(v, "key")?,
            survivors: u64_field(v, "survivors")?,
        },
        "wal_append" => EventKind::WalAppend {
            node: u64_field(v, "node")?,
            key: u64_field(v, "key")?,
            bytes: u64_field(v, "bytes")?,
        },
        "partition_start" => EventKind::PartitionStart {
            island: v
                .get("island")
                .and_then(Value::as_array)
                .ok_or("missing or non-array field `island`")?
                .iter()
                .map(|n| n.as_u64().ok_or("non-integer node in `island`".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
        },
        "partition_heal" => EventKind::PartitionHeal,
        "crash" => EventKind::Crash { node: u64_field(v, "node")? },
        "recover" => EventKind::Recover { node: u64_field(v, "node")? },
        "membership_change" => EventKind::MembershipChange {
            node: u64_field(v, "node")?,
            join: bool_field(v, "join")?,
        },
        "wal_replay" => {
            EventKind::WalReplay { node: u64_field(v, "node")?, records: u64_field(v, "records")? }
        }
        "span_open" => EventKind::SpanOpen {
            trace: u64_field(v, "trace")?,
            span: u64_field(v, "span")?,
            parent: u64_field(v, "parent")?,
            node: u64_field(v, "node")?,
            name: intern(str_field(v, "name")?),
        },
        "span_close" => EventKind::SpanClose {
            trace: u64_field(v, "trace")?,
            span: u64_field(v, "span")?,
            node: u64_field(v, "node")?,
            status: match str_field(v, "status")? {
                "ok" => SpanStatus::Ok,
                "failed" => SpanStatus::Failed,
                "abandoned" => SpanStatus::Abandoned,
                other => return Err(format!("unknown span status `{other}`")),
            },
        },
        "op_complete" => EventKind::OpComplete {
            session: u64_field(v, "session")?,
            op: u64_field(v, "op")?,
            key: u64_field(v, "key")?,
            kind: match str_field(v, "kind")? {
                "read" => ClientOpKind::Read,
                "write" => ClientOpKind::Write,
                other => return Err(format!("unknown op kind `{other}`")),
            },
            ok: bool_field(v, "ok")?,
            invoked_us: u64_field(v, "invoked_us")?,
            replica: u64_field(v, "replica")?,
            // The encoder omits absent optionals entirely, so presence
            // is the Some/None signal (a present-but-malformed field is
            // still an error).
            value: opt_u64_field(v, "value")?,
            values: u64_array_field(v, "values")?,
            stamp: match v.get("stamp") {
                None => None,
                Some(_) => {
                    let pair = u64_array_field(v, "stamp")?;
                    match pair[..] {
                        [ctr, actor] => Some((ctr, actor)),
                        _ => return Err("`stamp` must be a [counter, actor] pair".to_string()),
                    }
                }
            },
            version_ts_us: opt_u64_field(v, "version_ts_us")?,
        },
        other => return Err(format!("unknown event type `{other}`")),
    };
    Ok(kind)
}

/// Parse one JSONL line (1-based `line_no` is only used for errors).
pub fn parse_line(text: &str, line_no: usize) -> Result<TracedEvent, ParseError> {
    let err = |message: String| ParseError { line: line_no, message };
    let v = serde_json::parse_value(text).map_err(|e| err(e.to_string()))?;
    Ok(TracedEvent {
        seq: u64_field(&v, "seq").map_err(&err)?,
        t_us: u64_field(&v, "t_us").map_err(&err)?,
        kind: parse_kind(&v).map_err(&err)?,
    })
}

/// Parse a whole JSONL document (blank lines ignored) into the event
/// sequence, preserving file order.
pub fn parse_jsonl(text: &str) -> Result<Vec<TracedEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line, i + 1)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every event kind must survive an encode → parse round-trip.
    #[test]
    fn round_trips_every_event_kind() {
        let kinds = vec![
            EventKind::MessageSent { from: 0, to: 1, bytes: 8, trace: 3, span: 4 },
            EventKind::MessageDelivered { from: 0, to: 1, bytes: 8, trace: 0, span: 0 },
            EventKind::MessageDropped {
                from: 2,
                to: 1,
                reason: DropReason::Partition,
                trace: 5,
                span: 6,
            },
            EventKind::AntiEntropyRound { node: 1, fanout: 2 },
            EventKind::QuorumWait {
                node: 0,
                kind: QuorumKind::Write,
                waited_us: 900,
                acks: 2,
                needed: 2,
            },
            EventKind::ConflictDetected { node: 0, key: 7, siblings: 2 },
            EventKind::ConflictResolved { node: 0, key: 7, survivors: 1 },
            EventKind::WalAppend { node: 0, key: 7, bytes: 16 },
            EventKind::PartitionStart { island: vec![0, 2] },
            EventKind::PartitionHeal,
            EventKind::Crash { node: 2 },
            EventKind::Recover { node: 2 },
            EventKind::WalReplay { node: 2, records: 5 },
            EventKind::SpanOpen { trace: 1, span: 2, parent: 0, node: 3, name: "op_read" },
            EventKind::SpanClose { trace: 1, span: 2, node: 3, status: SpanStatus::Abandoned },
            EventKind::MembershipChange { node: 4, join: true },
            EventKind::OpComplete {
                session: 2,
                op: 17,
                key: 7,
                kind: ClientOpKind::Read,
                ok: true,
                invoked_us: 1_000,
                replica: 1,
                value: None,
                values: vec![3, 9],
                stamp: Some((9, 1)),
                version_ts_us: Some(950),
            },
            EventKind::OpComplete {
                session: 0,
                op: 3,
                key: 1,
                kind: ClientOpKind::Write,
                ok: false,
                invoked_us: 2_000,
                replica: 0,
                value: Some(5),
                values: vec![],
                stamp: None,
                version_ts_us: None,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = TracedEvent { seq: i as u64, t_us: 10 * i as u64, kind };
            let parsed = parse_line(&ev.to_json_line(), 1).expect("round-trip parse");
            assert_eq!(parsed, ev);
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("not json", 1).is_err());
        assert!(parse_line(r#"{"seq":0,"t_us":0,"type":"no_such_event"}"#, 1).is_err());
        // span_open missing its `parent` field.
        let e = parse_line(
            r#"{"seq":0,"t_us":0,"type":"span_open","trace":1,"span":2,"node":0,"name":"x"}"#,
            7,
        )
        .unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("parent"));
    }

    #[test]
    fn parses_jsonl_documents_and_reports_line_numbers() {
        let doc = "\
{\"seq\":0,\"t_us\":0,\"type\":\"crash\",\"node\":1}\n\
\n\
{\"seq\":1,\"t_us\":5,\"type\":\"recover\",\"node\":1}\n";
        let events = parse_jsonl(doc).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, EventKind::Recover { node: 1 });

        let bad = "{\"seq\":0,\"t_us\":0,\"type\":\"crash\",\"node\":1}\n{broken\n";
        assert_eq!(parse_jsonl(bad).unwrap_err().line, 2);
    }
}
