//! Streaming consistency checking over a JSONL event log.
//!
//! The recorder emits an `op_complete` event at the moment each client
//! operation finishes (its `t_us` *is* the completion time), so a trace
//! file — or a live pipe being appended to — can be checked online
//! without ever materializing the full operation trace. Each event is
//! converted back into the [`simnet::OpRecord`] the `consistency`
//! checkers consume and fed to a [`consistency::StreamVerifier`]; the
//! watermark advances with the event clock, so a bounded
//! [`consistency::StreamConfig::window`] keeps memory flat on
//! arbitrarily long logs.
//!
//! Events in a log are time-ordered but ops completing in the same
//! microsecond may be interleaved arbitrarily; [`StreamTraceChecker`]
//! buffers one timestamp's worth of records and sorts the tie group by
//! `(session, op_id)` before feeding, which restores the exact order
//! the batch oracle sees (`OpTrace::sort_by_completion`).

use consistency::{StreamConfig, StreamReports, StreamVerifier, StreamViolation};
use obs::{ClientOpKind, EventKind, TracedEvent};
use simnet::{NodeId, OpKind, OpRecord, SimTime};

/// Convert an `op_complete` event back into the operation record the
/// consistency checkers consume. Every other event kind yields `None`.
pub fn op_record(ev: &TracedEvent) -> Option<OpRecord> {
    let EventKind::OpComplete {
        session,
        op,
        key,
        kind,
        ok,
        invoked_us,
        replica,
        value,
        ref values,
        stamp,
        version_ts_us,
    } = ev.kind
    else {
        return None;
    };
    Some(OpRecord {
        session,
        op_id: op,
        key,
        kind: match kind {
            ClientOpKind::Read => OpKind::Read,
            ClientOpKind::Write => OpKind::Write,
        },
        value_written: value,
        value_read: values.clone(),
        invoked: SimTime::from_micros(invoked_us),
        completed: SimTime::from_micros(ev.t_us),
        replica: NodeId(replica as u32),
        ok,
        version_ts: version_ts_us.map(SimTime::from_micros),
        stamp,
    })
}

/// Incremental checker over a stream of [`TracedEvent`]s.
///
/// Feed events in log order with [`observe`](Self::observe); call
/// [`finish`](Self::finish) once the stream ends. Non-`op_complete`
/// events are ignored, so the whole log can be piped through without
/// pre-filtering.
pub struct StreamTraceChecker {
    verifier: StreamVerifier,
    /// Records for the current completion microsecond, held back until
    /// the clock advances so same-time ties can be sorted.
    pending: Vec<OpRecord>,
    ops: u64,
}

impl StreamTraceChecker {
    /// A checker with the given streaming configuration.
    pub fn new(config: StreamConfig) -> Self {
        StreamTraceChecker { verifier: StreamVerifier::new(config), pending: Vec::new(), ops: 0 }
    }

    /// Ingest one event; returns how many new violations it exposed.
    pub fn observe(&mut self, ev: &TracedEvent) -> usize {
        let Some(rec) = op_record(ev) else { return 0 };
        let mut found = 0;
        if self.pending.last().is_some_and(|p| p.completed != rec.completed) {
            found = self.flush();
        }
        self.pending.push(rec);
        self.ops += 1;
        found
    }

    /// Feed the buffered tie group in `(session, op_id)` order and
    /// advance the watermark to its completion time.
    fn flush(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        let before = self.verifier.violations().len();
        self.pending.sort_by_key(|r| (r.session, r.op_id));
        self.verifier.feed_slice(&self.pending);
        self.pending.clear();
        self.verifier.violations().len() - before
    }

    /// Operations ingested so far (including any still buffered).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Violations flagged so far (excluding the buffered tie group).
    pub fn violations(&self) -> &[StreamViolation] {
        self.verifier.violations()
    }

    /// Events evicted from checker state so far.
    pub fn events_evicted(&self) -> u64 {
        self.verifier.events_evicted()
    }

    /// Flush the tail, classify convergence, and return every report
    /// plus the number of operations checked.
    pub fn finish(mut self) -> (u64, StreamReports) {
        self.flush();
        (self.ops, self.verifier.finish())
    }
}

/// Render a finished streaming check as the plain-text summary
/// `tracequery check --stream` prints.
pub fn render_stream_report(ops: u64, reports: &StreamReports) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "checked {ops} op(s): {} violation(s), {} event(s) evicted",
        reports.violations.len(),
        reports.events_evicted
    );
    let s = &reports.session;
    let _ = writeln!(
        out,
        "session:     ryw={}/{} mr={}/{} mw={}/{} wfr={}/{} (violations/checks)",
        s.ryw_violations,
        s.ryw_checked,
        s.mr_violations,
        s.mr_checked,
        s.mw_violations,
        s.mw_checked,
        s.wfr_violations,
        s.wfr_checked
    );
    let st = &reports.staleness;
    let _ = writeln!(
        out,
        "staleness:   {} stale read(s) of {} classifiable",
        st.stale_reads,
        st.fresh_reads + st.stale_reads
    );
    let _ = writeln!(out, "monotonic:   {} value regression(s)", reports.monotonic.violations);
    match &reports.convergence {
        Some(c) => {
            let _ =
                writeln!(out, "convergence: {} key(s) diverged after quiescence", c.diverged.len());
        }
        None => {
            let _ = writeln!(out, "convergence: n/a (no acknowledged write)");
        }
    }
    for v in &reports.violations {
        let _ = writeln!(
            out,
            "VIOLATION {} session={} op={} key={} t={}µs",
            v.kind.name(),
            v.session,
            v.op_id,
            v.key,
            v.t_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_event(seq: u64, t_us: u64, session: u64, op: u64, kind: ClientOpKind) -> TracedEvent {
        TracedEvent {
            seq,
            t_us,
            kind: EventKind::OpComplete {
                session,
                op,
                key: 1,
                kind,
                ok: true,
                invoked_us: t_us.saturating_sub(100),
                replica: 0,
                value: match kind {
                    ClientOpKind::Write => Some(session * 1000 + op + 100),
                    ClientOpKind::Read => None,
                },
                values: match kind {
                    ClientOpKind::Write => vec![],
                    ClientOpKind::Read => vec![101],
                },
                stamp: Some((op + 1, 0)),
                version_ts_us: None,
            },
        }
    }

    #[test]
    fn op_record_roundtrips_fields() {
        let ev = op_event(0, 5_000, 2, 7, ClientOpKind::Write);
        let rec = op_record(&ev).unwrap();
        assert_eq!(rec.session, 2);
        assert_eq!(rec.op_id, 7);
        assert_eq!(rec.completed, SimTime::from_micros(5_000));
        assert_eq!(rec.invoked, SimTime::from_micros(4_900));
        assert_eq!(rec.value_written, Some(2107));
        assert_eq!(rec.kind, OpKind::Write);
        let span = TracedEvent {
            seq: 1,
            t_us: 0,
            kind: EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "x" },
        };
        assert!(op_record(&span).is_none());
    }

    #[test]
    fn same_microsecond_ties_are_fed_in_session_order() {
        // Two ops complete in the same microsecond, logged in reverse
        // session order; a later event flushes the tie group sorted.
        let mut checker = StreamTraceChecker::new(StreamConfig::default());
        checker.observe(&op_event(0, 1_000, 2, 0, ClientOpKind::Write));
        checker.observe(&op_event(1, 1_000, 1, 0, ClientOpKind::Write));
        checker.observe(&op_event(2, 2_000, 1, 1, ClientOpKind::Read));
        let (ops, reports) = checker.finish();
        assert_eq!(ops, 3);
        let st = &reports.staleness;
        assert_eq!(st.fresh_reads + st.stale_reads + st.unclassified_reads, 1);
    }

    #[test]
    fn stale_free_log_reports_clean() {
        let mut checker = StreamTraceChecker::new(StreamConfig::default());
        // A write of value 101, then a read observing it.
        let w = op_event(0, 1_000, 1, 0, ClientOpKind::Write);
        let mut r = op_event(1, 2_000, 1, 1, ClientOpKind::Read);
        if let EventKind::OpComplete { values, value, .. } = &mut r.kind {
            *values = vec![100];
            *value = None;
        }
        // Make the write's value match what the read observes.
        let mut w = w;
        if let EventKind::OpComplete { value, stamp, .. } = &mut w.kind {
            *value = Some(100);
            *stamp = Some((1, 0));
        }
        checker.observe(&w);
        checker.observe(&r);
        let (ops, reports) = checker.finish();
        assert_eq!(ops, 2);
        assert_eq!(reports.staleness.stale_reads, 0);
        assert!(reports.violations.is_empty(), "{:?}", reports.violations);
        let text = render_stream_report(ops, &reports);
        assert!(text.contains("checked 2 op(s): 0 violation(s)"), "{text}");
    }
}
