//! `profquery`: query the `profile` block of a `--profile` results
//! document (see `docs/PROFILING.md`).
//!
//! ```text
//! profquery top    <results.json> [--by calls|time|alloc] [-k N]
//! profquery diff   <old.json> <new.json> [--by calls|alloc]
//! profquery folded <results.json> [--by calls|time|alloc]
//! ```
//!
//! `top` ranks handler cells by the chosen weight. `diff` compares two
//! runs cell-by-cell and prints relative change, biggest regression
//! first — use jobs-invariant weights (`calls`, `alloc`) to compare
//! runs from different machines; `time` is host-dependent. `folded`
//! re-emits the profile as flamegraph stacks
//! (`scheme;role;handler[:variant] weight`), byte-identical to the
//! `.folded` file the harness writes beside the JSON.
//!
//! Exit codes: `0` success, `1` analysis failure (unreadable file, no
//! profile block), `2` usage error.

use obs::FoldWeight;
use obs_tools::{diff_rows, parse_profile, to_folded, top_rows, ProfRow};

const USAGE: &str = "usage:
  profquery top    <results.json> [--by calls|time|alloc] [-k N]
  profquery diff   <old.json> <new.json> [--by calls|alloc]
  profquery folded <results.json> [--by calls|time|alloc]";

fn usage_error(msg: &str) -> ! {
    eprintln!("profquery: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Write to stdout without panicking on a closed pipe (`profquery top
/// big.json | head` must exit cleanly).
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn load(path: &str) -> Vec<ProfRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("profquery: cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_profile(&text).unwrap_or_else(|e| {
        eprintln!("profquery: {path}: {e}");
        std::process::exit(1);
    })
}

fn weight_by_name(name: &str) -> FoldWeight {
    match name {
        "calls" => FoldWeight::Calls,
        "time" => FoldWeight::Time,
        "alloc" => FoldWeight::AllocBytes,
        other => usage_error(&format!("--by expects calls|time|alloc, got {other:?}")),
    }
}

/// Parse trailing `[--by X] [-k N]` flags shared by the subcommands.
fn parse_flags(rest: &[String]) -> (FoldWeight, usize) {
    let mut weight = FoldWeight::Calls;
    let mut k = 10usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if let Some(w) = a
            .strip_prefix("--by=")
            .map(str::to_string)
            .or_else(|| (a == "--by").then(|| it.next().cloned()).flatten())
        {
            weight = weight_by_name(&w);
        } else if let Some(n) = a
            .strip_prefix("-k=")
            .map(str::to_string)
            .or_else(|| (a == "-k").then(|| it.next().cloned()).flatten())
        {
            k = n.parse().unwrap_or_else(|_| usage_error("-k expects a positive integer"));
        } else {
            usage_error(&format!("unknown flag `{a}`"));
        }
    }
    (weight, k)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or_else(|| usage_error("missing command"));
    match cmd {
        "top" => {
            let [path, rest @ ..] = &args[1..] else { usage_error("top takes <results.json>") };
            let (weight, k) = parse_flags(rest);
            let rows = load(path);
            let top = top_rows(&rows, weight, k);
            let mut out = format!(
                "{:>12}  {:>14}  {:>10}  {:>14}  cell\n",
                "calls", "alloc_bytes", "allocs", "time_total_ns"
            );
            for r in &top {
                out.push_str(&format!(
                    "{:>12}  {:>14}  {:>10}  {:>14}  {};{}\n",
                    r.invocations,
                    r.alloc_bytes,
                    r.alloc_count,
                    r.time_total_ns,
                    r.scheme,
                    r.frame()
                ));
            }
            emit(&out);
        }
        "diff" => {
            let [old_path, new_path, rest @ ..] = &args[1..] else {
                usage_error("diff takes <old.json> <new.json>")
            };
            let (weight, _) = parse_flags(rest);
            let old = load(old_path);
            let new = load(new_path);
            let diff = diff_rows(&old, &new, weight);
            if diff.is_empty() {
                emit("no differences\n");
                return;
            }
            let mut out = format!("{:>14}  {:>14}  {:>9}  cell\n", "old", "new", "change");
            for d in &diff {
                let pct = d.pct();
                let change =
                    if pct.is_infinite() { "+new".to_string() } else { format!("{pct:+.1}%") };
                out.push_str(&format!(
                    "{:>14}  {:>14}  {:>9}  {};{}\n",
                    d.old, d.new, change, d.scheme, d.frame
                ));
            }
            emit(&out);
        }
        "folded" => {
            let [path, rest @ ..] = &args[1..] else { usage_error("folded takes <results.json>") };
            let (weight, _) = parse_flags(rest);
            emit(&to_folded(&load(path), weight));
        }
        other => usage_error(&format!("unknown command `{other}`")),
    }
}
