//! `tracequery`: query a JSONL trace exported with `--trace-out`.
//!
//! ```text
//! tracequery list    <trace.jsonl>                  one line per trace
//! tracequery op      <trace_id> <trace.jsonl>       span tree of one operation
//! tracequery explain <t_us> <trace.jsonl> [--window-us N]
//!                                                   fault + span context at t_us
//! tracequery chrome  <trace.jsonl> [-o <out.json>]  Chrome trace_event export
//! tracequery check   <trace.jsonl>                  span conservation invariants
//! tracequery check --stream <trace.jsonl> [--window-ms N]
//!                                                   streaming consistency check
//! ```
//!
//! `check --stream` feeds the log's `op_complete` events through the
//! incremental consistency checkers line by line — pass `-` to read
//! from stdin, so a live `--trace-out` pipe can be monitored while the
//! run is still producing it. `--window-ms N` bounds checker memory by
//! evicting state older than N milliseconds behind the event clock
//! (violations older than the window can then go unreported; see
//! `docs/CHECKERS.md`).
//!
//! Exit codes: `0` success, `1` analysis failure (parse error, unknown
//! trace id, conservation or consistency violation), `2` usage error.

use obs::TracedEvent;
use obs_tools::{
    build_tree, check_spans, chrome_trace, parse_jsonl, parse_line, render_stream_report,
    render_tree, trace_summaries, StreamTraceChecker,
};

const USAGE: &str = "usage:
  tracequery list    <trace.jsonl>
  tracequery op      <trace_id> <trace.jsonl>
  tracequery explain <t_us> <trace.jsonl> [--window-us N]
  tracequery chrome  <trace.jsonl> [-o <out.json>]
  tracequery check   <trace.jsonl>
  tracequery check --stream <trace.jsonl | -> [--window-ms N]";

fn usage_error(msg: &str) -> ! {
    eprintln!("tracequery: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Write to stdout without panicking on a closed pipe (`tracequery list
/// huge.jsonl | head` must exit cleanly).
fn emit(text: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn load(path: &str) -> Vec<TracedEvent> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("tracequery: cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("tracequery: {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or_else(|| usage_error("missing command"));
    match cmd {
        "list" => {
            let [path] = &args[1..] else { usage_error("list takes <trace.jsonl>") };
            let events = load(path);
            let sums = trace_summaries(&events);
            let mut out = format!("{} trace(s)\n", sums.len());
            for s in sums {
                let close = s.close_t_us.map_or("?".to_string(), |c| c.to_string());
                let status = s.status.as_deref().unwrap_or("open");
                out.push_str(&format!(
                    "trace {:>6}  {:<16} {:>3} span(s)  [{}..{}µs]  {status}\n",
                    s.trace, s.root_name, s.spans, s.open_t_us, close
                ));
            }
            emit(&out);
        }
        "op" => {
            let [trace_id, path] = &args[1..] else {
                usage_error("op takes <trace_id> <trace.jsonl>")
            };
            let trace_id: u64 =
                trace_id.parse().unwrap_or_else(|_| usage_error("<trace_id> must be an integer"));
            let events = load(path);
            match build_tree(&events, trace_id) {
                Some(tree) => emit(&render_tree(&tree)),
                None => {
                    eprintln!("tracequery: no spans for trace {trace_id} in {path}");
                    std::process::exit(1);
                }
            }
        }
        "explain" => {
            let (t_us, path) = match &args[1..] {
                [t, p] | [t, p, ..] => (t, p),
                _ => usage_error("explain takes <t_us> <trace.jsonl>"),
            };
            let t_us: u64 =
                t_us.parse().unwrap_or_else(|_| usage_error("<t_us> must be an integer"));
            let mut window_us: u64 = 500_000;
            let mut rest = args[3..].iter();
            while let Some(a) = rest.next() {
                match a
                    .strip_prefix("--window-us=")
                    .map(str::to_string)
                    .or_else(|| (a == "--window-us").then(|| rest.next().cloned()).flatten())
                {
                    Some(n) => {
                        window_us =
                            n.parse().unwrap_or_else(|_| usage_error("--window-us expects µs"))
                    }
                    None => usage_error(&format!("unknown flag `{a}`")),
                }
            }
            let events = load(path);
            let ctx = consistency::attribute_violation(&events, t_us, window_us);
            let mut out = format!("at t={t_us}µs (window {window_us}µs): {}\n", ctx.verdict());
            for (reason, n) in &ctx.drops_by_reason {
                out.push_str(&format!("  drops[{reason}] = {n}\n"));
            }
            if !ctx.crashed_nodes.is_empty() {
                out.push_str(&format!("  nodes down: {:?}\n", ctx.crashed_nodes));
            }
            if let Some(ae) = ctx.since_anti_entropy_us {
                out.push_str(&format!("  last anti-entropy round {ae}µs earlier\n"));
            }
            if ctx.in_flight_spans.is_empty() {
                out.push_str("  no operation spans in flight\n");
            }
            for s in &ctx.in_flight_spans {
                out.push_str(&format!(
                    "  in flight: {} #{} (trace {}, node {}) open since {}µs\n",
                    s.name, s.span, s.trace, s.node, s.open_t_us
                ));
                // Walk the causal chain from this span to its trace
                // root: the path the operation took to get here.
                for (i, link) in
                    consistency::causal_chain(&events, s.span).iter().enumerate().skip(1)
                {
                    out.push_str(&format!(
                        "  {:>width$}caused by {} #{} (node {}) opened at {}µs\n",
                        "",
                        link.name,
                        link.span,
                        link.node,
                        link.open_t_us,
                        width = 2 + 2 * i
                    ));
                }
            }
            emit(&out);
        }
        "chrome" => {
            let (path, out) = match &args[1..] {
                [p] => (p.clone(), None),
                [p, flag, o] if flag == "-o" || flag == "--out" => (p.clone(), Some(o.clone())),
                _ => usage_error("chrome takes <trace.jsonl> [-o <out.json>]"),
            };
            let events = load(&path);
            let json = chrome_trace(&events);
            match out {
                Some(out) => {
                    std::fs::write(&out, &json).unwrap_or_else(|e| {
                        eprintln!("tracequery: cannot write {out}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!("[chrome trace saved to {out}]");
                }
                None => emit(&format!("{json}\n")),
            }
        }
        "check" => {
            let rest = &args[1..];
            if rest.iter().any(|a| a == "--stream") {
                check_stream(rest);
                return;
            }
            let [path] = rest else { usage_error("check takes <trace.jsonl>") };
            let report = check_spans(&load(path));
            emit(&format!("{report}\n"));
            if !report.ok() {
                std::process::exit(1);
            }
        }
        other => usage_error(&format!("unknown command `{other}`")),
    }
}

/// `check --stream`: run the incremental consistency checkers over the
/// log's `op_complete` events, line by line. Reads stdin when the path
/// is `-`, so a live trace pipe can be monitored as it grows. Exits 1
/// if any violation was flagged.
fn check_stream(rest: &[String]) {
    use std::io::BufRead;
    let mut path: Option<String> = None;
    let mut window_ms: Option<u64> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--stream" {
            continue;
        }
        match a
            .strip_prefix("--window-ms=")
            .map(str::to_string)
            .or_else(|| (a == "--window-ms").then(|| it.next().cloned()).flatten())
        {
            Some(n) => {
                window_ms =
                    Some(n.parse().unwrap_or_else(|_| usage_error("--window-ms expects ms")))
            }
            None if path.is_none() => path = Some(a.clone()),
            None => usage_error(&format!("unknown flag `{a}`")),
        }
    }
    let path = path.unwrap_or_else(|| usage_error("check --stream takes <trace.jsonl | ->"));
    let config = consistency::StreamConfig {
        window: window_ms.map(simnet::Duration::from_millis),
        // The per-read staleness sample vectors grow with the trace;
        // a bounded window asks for flat memory, so drop them there.
        retain_samples: window_ms.is_none(),
        ..consistency::StreamConfig::default()
    };
    let mut checker = StreamTraceChecker::new(config);
    let mut feed = |line: &str, lineno: usize| {
        if line.trim().is_empty() {
            return;
        }
        let ev = parse_line(line, lineno).unwrap_or_else(|e| {
            eprintln!("tracequery: {path}: {e}");
            std::process::exit(1);
        });
        checker.observe(&ev);
    };
    if path == "-" {
        let stdin = std::io::stdin();
        for (i, line) in stdin.lock().lines().enumerate() {
            let line = line.unwrap_or_else(|e| {
                eprintln!("tracequery: stdin: {e}");
                std::process::exit(1);
            });
            feed(&line, i + 1);
        }
    } else {
        let file = std::fs::File::open(&path).unwrap_or_else(|e| {
            eprintln!("tracequery: cannot read {path}: {e}");
            std::process::exit(1);
        });
        for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
            let line = line.unwrap_or_else(|e| {
                eprintln!("tracequery: {path}: {e}");
                std::process::exit(1);
            });
            feed(&line, i + 1);
        }
    }
    let (ops, reports) = checker.finish();
    emit(&render_stream_report(ops, &reports));
    if !reports.violations.is_empty() {
        std::process::exit(1);
    }
}
