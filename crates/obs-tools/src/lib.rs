//! Offline analysis of JSONL trace files (`--trace-out`).
//!
//! The simulator records a structured event log — protocol events plus
//! causal span open/close pairs (see `docs/METRICS.md` and
//! `docs/TRACING.md`) — and exports it as one JSON object per line.
//! This crate is the offline side: [`parse`] reads a JSONL file back
//! into the same [`obs::TracedEvent`] values the recorder produced,
//! [`tree`] reconstructs per-operation span trees, [`check`] verifies
//! the span conservation invariants, [`stream`] runs the incremental
//! consistency checkers over the `op_complete` events (file or live
//! pipe, bounded memory), and [`chrome`] converts a trace to Chrome
//! `trace_event` JSON for Perfetto / `chrome://tracing`.
//!
//! The `tracequery` binary is the CLI front-end:
//!
//! ```text
//! tracequery list    trace.jsonl            # one line per trace
//! tracequery op 42   trace.jsonl            # span tree of trace 42
//! tracequery explain 1500000 trace.jsonl    # why was t=1.5s anomalous?
//! tracequery chrome  trace.jsonl -o out.json
//! tracequery check   trace.jsonl            # span conservation; exit 1 on violation
//! tracequery check --stream trace.jsonl     # streaming consistency check (`-` = stdin)
//! ```
//!
//! [`prof`] is the offline side of the in-sim handler profiler
//! (`--profile` runs; see `docs/PROFILING.md`), fronted by the
//! `profquery` binary:
//!
//! ```text
//! profquery top    results/profile_protos.json           # hottest handlers
//! profquery diff   old.json new.json                     # regression percentages
//! profquery folded results/profile_protos.json           # flamegraph stacks
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod chrome;
pub mod parse;
pub mod prof;
pub mod stream;
pub mod tree;

pub use check::{check_spans, CheckReport};
pub use chrome::chrome_trace;
pub use parse::{parse_jsonl, parse_line, ParseError};
pub use prof::{diff_rows, find_profile, parse_profile, to_folded, top_rows, DiffRow, ProfRow};
pub use stream::{op_record, render_stream_report, StreamTraceChecker};
pub use tree::{build_tree, render_tree, trace_summaries, SpanNode, SpanTree, TraceSummary};
