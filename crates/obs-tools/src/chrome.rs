//! Export a parsed trace as Chrome `trace_event` JSON.
//!
//! The output loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: each span becomes a complete (`"ph":"X"`) event
//! with its virtual-time bounds, grouped by trace (`pid`) and node
//! (`tid`), so one operation renders as one process row with its hops
//! as nested slices. Faults (crashes, recoveries, partitions) become
//! global instant events so anomalous spans can be eyeballed against
//! the fault timeline.

use consistency::all_spans;
use obs::{EventKind, TracedEvent};
use serde::Value;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_val(s: &str) -> Value {
    Value::String(s.to_string())
}

/// Convert an event log to a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`). Timestamps are
/// virtual microseconds, which is exactly the unit `trace_event`
/// expects in `ts`/`dur`.
pub fn chrome_trace(events: &[TracedEvent]) -> String {
    let mut out: Vec<Value> = Vec::new();
    for s in all_spans(events) {
        let args = obj(vec![
            ("span", Value::U64(s.span)),
            ("parent", Value::U64(s.parent)),
            ("status", str_val(s.status.as_deref().unwrap_or("open"))),
        ]);
        let mut fields = vec![
            ("name", str_val(&s.name)),
            ("cat", str_val("span")),
            ("pid", Value::U64(s.trace)),
            ("tid", Value::U64(s.node)),
            ("ts", Value::U64(s.open_t_us)),
        ];
        match s.close_t_us {
            // A closed span is one complete slice.
            Some(close) => {
                fields.push(("ph", str_val("X")));
                fields.push(("dur", Value::U64(close - s.open_t_us)));
            }
            // An unclosed span (truncated log) renders as a begin event
            // with no end; viewers draw it to the end of the timeline.
            None => fields.push(("ph", str_val("B"))),
        }
        fields.push(("args", args));
        out.push(obj(fields));
    }
    for ev in events {
        let (name, node) = match &ev.kind {
            EventKind::Crash { node } => ("crash", *node),
            EventKind::Recover { node } => ("recover", *node),
            EventKind::PartitionStart { .. } => ("partition_start", 0),
            EventKind::PartitionHeal => ("partition_heal", 0),
            _ => continue,
        };
        out.push(obj(vec![
            ("name", str_val(name)),
            ("cat", str_val("fault")),
            ("ph", str_val("i")),
            // Global scope: the instant line spans every row.
            ("s", str_val("g")),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(node)),
            ("ts", Value::U64(ev.t_us)),
        ]));
    }
    obj(vec![("traceEvents", Value::Array(out)), ("displayTimeUnit", str_val("ms"))]).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::SpanStatus;

    #[test]
    fn exports_complete_slices_and_fault_instants() {
        let events = vec![
            TracedEvent {
                seq: 0,
                t_us: 100,
                kind: EventKind::SpanOpen { trace: 3, span: 1, parent: 0, node: 2, name: "op" },
            },
            TracedEvent {
                seq: 1,
                t_us: 400,
                kind: EventKind::SpanClose { trace: 3, span: 1, node: 2, status: SpanStatus::Ok },
            },
            TracedEvent { seq: 2, t_us: 250, kind: EventKind::Crash { node: 1 } },
        ];
        let json = chrome_trace(&events);
        // The document must itself be valid JSON with the expected shape.
        let doc = serde_json::parse_value(&json).unwrap();
        let traced = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(traced.len(), 2);
        let slice = &traced[0];
        assert_eq!(slice.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(slice.get("ts").and_then(Value::as_u64), Some(100));
        assert_eq!(slice.get("dur").and_then(Value::as_u64), Some(300));
        assert_eq!(slice.get("pid").and_then(Value::as_u64), Some(3));
        let inst = &traced[1];
        assert_eq!(inst.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(inst.get("cat").and_then(Value::as_str), Some("fault"));
    }

    #[test]
    fn unclosed_span_becomes_begin_event() {
        let events = vec![TracedEvent {
            seq: 0,
            t_us: 5,
            kind: EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "op" },
        }];
        let doc = serde_json::parse_value(&chrome_trace(&events)).unwrap();
        let traced = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(traced[0].get("ph").and_then(Value::as_str), Some("B"));
        assert!(traced[0].get("dur").is_none());
    }
}
