//! Span conservation checks.
//!
//! The recorder guarantees (and the determinism tests rely on) a set of
//! structural invariants over span events — chiefly the conservation
//! identity `spans_opened == spans_closed`, with `abandoned` closes
//! marking spans cut short by the horizon, a crash, or a leader
//! demotion. This module re-verifies those invariants offline on a
//! parsed trace, so a truncated or hand-edited file fails loudly
//! (`tracequery check` exits non-zero).

use obs::{EventKind, SpanStatus, TracedEvent};
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of [`check_spans`] over one trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Events examined.
    pub events: usize,
    /// Distinct traces seen in span events.
    pub traces: usize,
    /// Spans opened.
    pub opened: u64,
    /// Spans closed (any status).
    pub closed: u64,
    /// Spans closed with status `abandoned` (subset of `closed`).
    pub abandoned: u64,
    /// Invariant violations, in detection order. Empty means the trace
    /// is well-formed.
    pub errors: Vec<String>,
}

impl CheckReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} event(s), {} trace(s): {} span(s) opened, {} closed ({} abandoned)",
            self.events, self.traces, self.opened, self.closed, self.abandoned
        )?;
        for e in &self.errors {
            writeln!(f, "ERROR: {e}")?;
        }
        write!(f, "{}", if self.ok() { "span conservation: OK" } else { "span conservation: FAIL" })
    }
}

/// State of one span while scanning the log.
struct Open {
    trace: u64,
    t_us: u64,
    closed: bool,
}

/// Verify the span invariants over an event log:
///
/// 1. span ids are unique — no second `span_open` for an id;
/// 2. every `span_close` matches a prior `span_open` with the same
///    trace, at the same or a later time;
/// 3. no span closes twice;
/// 4. a non-root span's parent opened earlier in the same trace;
/// 5. every opened span is closed by end of log (the recorder closes
///    survivors as `abandoned` at teardown, so an unclosed span means a
///    truncated or corrupted file).
pub fn check_spans(events: &[TracedEvent]) -> CheckReport {
    let mut report = CheckReport { events: events.len(), ..CheckReport::default() };
    let mut open: BTreeMap<u64, Open> = BTreeMap::new();
    let mut traces: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for ev in events {
        match &ev.kind {
            EventKind::SpanOpen { trace, span, parent, .. } => {
                report.opened += 1;
                traces.insert(*trace);
                if *trace == 0 || *span == 0 {
                    report.errors.push(format!(
                        "span_open seq={} uses reserved id 0 (trace={trace}, span={span})",
                        ev.seq
                    ));
                }
                if *parent != 0 {
                    match open.get(parent) {
                        None => report.errors.push(format!(
                            "span {span} (seq={}) opened under unknown parent {parent}",
                            ev.seq
                        )),
                        Some(p) if p.trace != *trace => report.errors.push(format!(
                            "span {span} of trace {trace} has parent {parent} in trace {}",
                            p.trace
                        )),
                        Some(_) => {}
                    }
                }
                if open
                    .insert(*span, Open { trace: *trace, t_us: ev.t_us, closed: false })
                    .is_some()
                {
                    report.errors.push(format!("span {span} opened twice (seq={})", ev.seq));
                }
            }
            EventKind::SpanClose { trace, span, status, .. } => {
                report.closed += 1;
                if *status == SpanStatus::Abandoned {
                    report.abandoned += 1;
                }
                match open.get_mut(span) {
                    None => report
                        .errors
                        .push(format!("span {span} closed (seq={}) but never opened", ev.seq)),
                    Some(o) => {
                        if o.closed {
                            report
                                .errors
                                .push(format!("span {span} closed twice (seq={})", ev.seq));
                        }
                        if o.trace != *trace {
                            report.errors.push(format!(
                                "span {span} closed under trace {trace} but opened under {}",
                                o.trace
                            ));
                        }
                        if ev.t_us < o.t_us {
                            report.errors.push(format!(
                                "span {span} closes at {}µs before it opens at {}µs",
                                ev.t_us, o.t_us
                            ));
                        }
                        o.closed = true;
                    }
                }
            }
            _ => {}
        }
    }
    for (span, o) in &open {
        if !o.closed {
            report.errors.push(format!(
                "span {span} (trace {}) opened at {}µs and never closed",
                o.trace, o.t_us
            ));
        }
    }
    report.traces = traces.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_us: u64, kind: EventKind) -> TracedEvent {
        TracedEvent { seq, t_us, kind }
    }

    #[test]
    fn well_formed_trace_passes() {
        let events = vec![
            ev(0, 10, EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "op" }),
            ev(1, 20, EventKind::SpanOpen { trace: 1, span: 2, parent: 1, node: 1, name: "hop" }),
            ev(2, 30, EventKind::SpanClose { trace: 1, span: 2, node: 1, status: SpanStatus::Ok }),
            ev(
                3,
                40,
                EventKind::SpanClose { trace: 1, span: 1, node: 0, status: SpanStatus::Abandoned },
            ),
        ];
        let report = check_spans(&events);
        assert!(report.ok(), "{report}");
        assert_eq!((report.opened, report.closed, report.abandoned), (2, 2, 1));
        assert_eq!(report.traces, 1);
        assert!(report.to_string().contains("OK"));
    }

    #[test]
    fn detects_each_violation_kind() {
        // Unclosed span.
        let events = vec![ev(
            0,
            10,
            EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "x" },
        )];
        assert!(check_spans(&events).errors[0].contains("never closed"));

        // Close without open.
        let events = vec![ev(
            0,
            10,
            EventKind::SpanClose { trace: 1, span: 9, node: 0, status: SpanStatus::Ok },
        )];
        assert!(check_spans(&events).errors[0].contains("never opened"));

        // Double close.
        let events = vec![
            ev(0, 10, EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "x" }),
            ev(1, 20, EventKind::SpanClose { trace: 1, span: 1, node: 0, status: SpanStatus::Ok }),
            ev(2, 30, EventKind::SpanClose { trace: 1, span: 1, node: 0, status: SpanStatus::Ok }),
        ];
        assert!(check_spans(&events).errors[0].contains("closed twice"));

        // Unknown parent.
        let events = vec![ev(
            0,
            10,
            EventKind::SpanOpen { trace: 1, span: 2, parent: 7, node: 0, name: "x" },
        )];
        assert!(check_spans(&events).errors[0].contains("unknown parent"));

        // Trace mismatch between open and close.
        let events = vec![
            ev(0, 10, EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "x" }),
            ev(1, 20, EventKind::SpanClose { trace: 2, span: 1, node: 0, status: SpanStatus::Ok }),
        ];
        assert!(check_spans(&events).errors[0].contains("trace 2"));
    }
}
