//! The multi-version store.

use crate::value::{Key, Value};
use clocks::LamportTimestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::RangeBounds;

/// One version of a key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Version {
    /// The value.
    pub value: Value,
    /// Totally ordered write timestamp (LWW arbitration & snapshot reads).
    pub ts: LamportTimestamp,
    /// Simulation time (microseconds) when the write was originally issued
    /// by a client — carried through replication so staleness is measured
    /// against the *origin* write time, not the local apply time.
    pub written_at: u64,
}

/// A multi-version key-value store.
///
/// Each key holds a version chain ordered by timestamp. `put` is
/// idempotent per `(key, ts)` — replaying a log or receiving a replicated
/// write twice leaves the chain unchanged — which is what lets anti-entropy
/// protocols push the same write along multiple paths.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MvStore {
    chains: BTreeMap<Key, Vec<Version>>, // each Vec sorted ascending by ts
    /// Number of versions across all keys (cheap len bookkeeping).
    version_count: usize,
}

impl MvStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a version. Returns `true` if the version was new (not a
    /// duplicate `(key, ts)` pair).
    pub fn put(&mut self, key: Key, value: Value, ts: LamportTimestamp, written_at: u64) -> bool {
        let chain = self.chains.entry(key).or_default();
        match chain.binary_search_by(|v| v.ts.cmp(&ts)) {
            Ok(_) => false, // duplicate timestamp: idempotent no-op
            Err(pos) => {
                chain.insert(pos, Version { value, ts, written_at });
                self.version_count += 1;
                true
            }
        }
    }

    /// The latest version of `key`.
    pub fn get(&self, key: Key) -> Option<&Version> {
        self.chains.get(&key).and_then(|c| c.last())
    }

    /// The latest version with `ts <= at` (snapshot read).
    pub fn get_at(&self, key: Key, at: LamportTimestamp) -> Option<&Version> {
        let chain = self.chains.get(&key)?;
        let idx = chain.partition_point(|v| v.ts <= at);
        idx.checked_sub(1).map(|i| &chain[i])
    }

    /// All versions of `key`, oldest first.
    pub fn versions(&self, key: Key) -> &[Version] {
        self.chains.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Latest versions for all keys in `range`, ascending by key.
    pub fn scan<R: RangeBounds<Key>>(&self, range: R) -> impl Iterator<Item = (Key, &Version)> {
        self.chains.range(range).filter_map(|(&k, c)| c.last().map(|v| (k, v)))
    }

    /// Drop all versions strictly older than the latest for every key,
    /// keeping at most `keep` recent versions. Returns versions dropped.
    pub fn compact(&mut self, keep: usize) -> usize {
        let keep = keep.max(1);
        let mut dropped = 0;
        for chain in self.chains.values_mut() {
            if chain.len() > keep {
                dropped += chain.len() - keep;
                chain.drain(..chain.len() - keep);
            }
        }
        self.version_count -= dropped;
        dropped
    }

    /// Number of keys present.
    pub fn key_count(&self) -> usize {
        self.chains.len()
    }

    /// Total number of versions.
    pub fn version_count(&self) -> usize {
        self.version_count
    }

    /// True if no keys.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// The maximum timestamp stored anywhere (the store's "high-water
    /// mark"); `None` when empty. Used by replicas to seed Lamport clocks
    /// on recovery.
    pub fn max_ts(&self) -> Option<LamportTimestamp> {
        self.chains.values().filter_map(|c| c.last()).map(|v| v.ts).max()
    }

    /// Latest-version equality with another store (ignores history depth):
    /// the convergence predicate anti-entropy experiments check.
    pub fn same_latest(&self, other: &MvStore) -> bool {
        if self.chains.len() != other.chains.len() {
            return false;
        }
        self.chains
            .iter()
            .all(|(&k, c)| matches!((c.last(), other.get(k)), (Some(a), Some(b)) if a == b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(c: u64, a: u64) -> LamportTimestamp {
        LamportTimestamp::new(c, a)
    }

    #[test]
    fn put_get_latest() {
        let mut s = MvStore::new();
        assert!(s.put(1, Value::from_u64(10), ts(1, 0), 100));
        assert!(s.put(1, Value::from_u64(20), ts(2, 0), 200));
        let v = s.get(1).unwrap();
        assert_eq!(v.value.as_u64(), Some(20));
        assert_eq!(v.written_at, 200);
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn out_of_order_arrival_keeps_latest() {
        // Replicated writes can arrive in any order; the chain stays sorted.
        let mut s = MvStore::new();
        s.put(1, Value::from_u64(20), ts(2, 0), 200);
        s.put(1, Value::from_u64(10), ts(1, 0), 100);
        assert_eq!(s.get(1).unwrap().value.as_u64(), Some(20));
        assert_eq!(s.versions(1).len(), 2);
        assert!(s.versions(1).windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn put_is_idempotent_per_timestamp() {
        let mut s = MvStore::new();
        assert!(s.put(1, Value::from_u64(10), ts(1, 0), 100));
        assert!(!s.put(1, Value::from_u64(10), ts(1, 0), 100));
        assert_eq!(s.versions(1).len(), 1);
        assert_eq!(s.version_count(), 1);
    }

    #[test]
    fn snapshot_read_at_timestamp() {
        let mut s = MvStore::new();
        s.put(1, Value::from_u64(10), ts(1, 0), 0);
        s.put(1, Value::from_u64(20), ts(5, 0), 0);
        assert_eq!(s.get_at(1, ts(0, 9)), None);
        assert_eq!(s.get_at(1, ts(1, 0)).unwrap().value.as_u64(), Some(10));
        assert_eq!(s.get_at(1, ts(4, 9)).unwrap().value.as_u64(), Some(10));
        assert_eq!(s.get_at(1, ts(5, 0)).unwrap().value.as_u64(), Some(20));
        assert_eq!(s.get_at(1, ts(99, 0)).unwrap().value.as_u64(), Some(20));
    }

    #[test]
    fn scan_returns_latest_per_key_in_order() {
        let mut s = MvStore::new();
        s.put(3, Value::from_u64(3), ts(1, 0), 0);
        s.put(1, Value::from_u64(1), ts(1, 1), 0);
        s.put(2, Value::from_u64(2), ts(1, 2), 0);
        s.put(2, Value::from_u64(22), ts(2, 2), 0);
        let got: Vec<(Key, u64)> =
            s.scan(1..3).map(|(k, v)| (k, v.value.as_u64().unwrap())).collect();
        assert_eq!(got, vec![(1, 1), (2, 22)]);
    }

    #[test]
    fn compact_keeps_recent_versions() {
        let mut s = MvStore::new();
        for i in 1..=5 {
            s.put(1, Value::from_u64(i), ts(i, 0), 0);
        }
        let dropped = s.compact(2);
        assert_eq!(dropped, 3);
        assert_eq!(s.versions(1).len(), 2);
        assert_eq!(s.get(1).unwrap().value.as_u64(), Some(5));
        assert_eq!(s.version_count(), 2);
        // keep=0 clamps to 1.
        s.compact(0);
        assert_eq!(s.versions(1).len(), 1);
    }

    #[test]
    fn max_ts_and_counts() {
        let mut s = MvStore::new();
        assert_eq!(s.max_ts(), None);
        assert!(s.is_empty());
        s.put(1, Value::from_u64(1), ts(3, 1), 0);
        s.put(2, Value::from_u64(2), ts(7, 0), 0);
        assert_eq!(s.max_ts(), Some(ts(7, 0)));
        assert_eq!(s.key_count(), 2);
        assert_eq!(s.version_count(), 2);
    }

    #[test]
    fn same_latest_ignores_history_depth() {
        let mut a = MvStore::new();
        let mut b = MvStore::new();
        a.put(1, Value::from_u64(1), ts(1, 0), 0);
        a.put(1, Value::from_u64(2), ts(2, 0), 0);
        b.put(1, Value::from_u64(2), ts(2, 0), 0);
        assert!(a.same_latest(&b));
        b.put(2, Value::from_u64(9), ts(3, 0), 0);
        assert!(!a.same_latest(&b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The latest version after any sequence of puts is the one with
        /// the maximum timestamp, regardless of arrival order.
        #[test]
        fn latest_is_max_timestamp(
            mut writes in proptest::collection::vec((1u64..100, 0u64..4, 0u64..1000), 1..40)
        ) {
            // Deduplicate (counter, actor) pairs: duplicate stamps are
            // idempotent no-ops whose value would be arbitrary.
            writes.sort_by_key(|w| (w.0, w.1));
            writes.dedup_by_key(|w| (w.0, w.1));
            let mut s = MvStore::new();
            for &(c, a, v) in &writes {
                s.put(7, Value::from_u64(v), LamportTimestamp::new(c, a), 0);
            }
            let max = writes.iter().max_by_key(|w| (w.0, w.1)).unwrap();
            prop_assert_eq!(s.get(7).unwrap().value.as_u64(), Some(max.2));
            prop_assert_eq!(s.versions(7).len(), writes.len());
        }

        /// Chains are always sorted and snapshot reads respect them.
        #[test]
        fn chains_sorted_and_snapshots_consistent(
            writes in proptest::collection::vec((1u64..50, 0u64..3), 1..30),
            probe in 0u64..60,
        ) {
            let mut s = MvStore::new();
            for &(c, a) in &writes {
                s.put(1, Value::from_u64(c * 10 + a), LamportTimestamp::new(c, a), 0);
            }
            let chain = s.versions(1);
            prop_assert!(chain.windows(2).all(|w| w[0].ts < w[1].ts));
            let at = LamportTimestamp::new(probe, u64::MAX);
            if let Some(v) = s.get_at(1, at) {
                prop_assert!(v.ts <= at);
                // No later version also satisfies the bound.
                prop_assert!(chain.iter().all(|w| w.ts <= at || w.ts > v.ts));
            } else {
                prop_assert!(chain.iter().all(|w| w.ts > at));
            }
        }
    }
}
