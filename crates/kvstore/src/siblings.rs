//! A sibling store: dotted-version-vector multi-value storage.
//!
//! This is the Dynamo/Riak data model the tutorial contrasts with LWW: a
//! write carries the causal *context* the client last read; the store keeps
//! every write not superseded by that context as a concurrent **sibling**.
//! Reads return all siblings plus a context to pass to the next write.

use crate::value::{Key, Value};
use clocks::{Dot, DottedVersionVector, VersionVector};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A stored sibling: a value plus the dotted version vector naming its
/// write and causal context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sibling {
    /// The value.
    pub value: Value,
    /// Write identity + context.
    pub dvv: DottedVersionVector,
    /// Origin write time (simulation microseconds), for staleness metrics.
    pub written_at: u64,
}

/// Per-key state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Entry {
    siblings: Vec<Sibling>,
}

/// The result of a read: current siblings and the context to quote on the
/// next write of this key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadResult {
    /// Concurrent values (empty = key unknown).
    pub values: Vec<Value>,
    /// Causal context covering everything returned.
    pub context: VersionVector,
}

/// A replica-local store keeping concurrent siblings per key.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiblingStore {
    /// This replica's actor id (for minting dots).
    replica: u64,
    /// Dots issued by this replica so far.
    issued: u64,
    entries: BTreeMap<Key, Entry>,
}

impl SiblingStore {
    /// An empty store owned by replica `replica`.
    pub fn new(replica: u64) -> Self {
        SiblingStore { replica, issued: 0, entries: BTreeMap::new() }
    }

    /// Read `key`: all current siblings plus their joint context.
    pub fn read(&self, key: Key) -> ReadResult {
        let mut context = VersionVector::new();
        let mut values = Vec::new();
        if let Some(e) = self.entries.get(&key) {
            for s in &e.siblings {
                context.merge(&s.dvv.event_set());
                values.push(s.value.clone());
            }
        }
        ReadResult { values, context }
    }

    /// Write `value` to `key` with the client's causal `context`. Siblings
    /// covered by the context are superseded; concurrent ones remain.
    /// Returns the new sibling's dot.
    pub fn write(
        &mut self,
        key: Key,
        value: Value,
        context: &VersionVector,
        written_at: u64,
    ) -> Dot {
        self.issued += 1;
        let dot = Dot::new(self.replica, self.issued);
        let dvv = DottedVersionVector::new(dot, context.clone());
        let entry = self.entries.entry(key).or_default();
        entry.siblings.retain(|s| !s.dvv.covered_by(context));
        entry.siblings.push(Sibling { value, dvv, written_at });
        dot
    }

    /// Apply a replicated sibling from another replica (anti-entropy /
    /// replication path). Keeps the causally-maximal set. Returns `true`
    /// if the sibling changed local state.
    ///
    /// Obsolescence is judged by DVV comparison — i.e. against the other
    /// write's *context*, never `context ∪ dot` (see
    /// [`clocks::vector::prune_siblings`] for why the dot must stay out of the
    /// coverage check).
    pub fn apply_remote(&mut self, key: Key, sibling: Sibling) -> bool {
        use clocks::CausalOrd;
        let entry = self.entries.entry(key).or_default();
        // Duplicate dot: already have this write.
        if entry.siblings.iter().any(|s| s.dvv.dot == sibling.dvv.dot) {
            return false;
        }
        // Incoming causally precedes an existing sibling: obsolete.
        if entry.siblings.iter().any(|s| sibling.dvv.compare(&s.dvv) == CausalOrd::Before) {
            return false;
        }
        // Drop local siblings the incoming write supersedes.
        entry.siblings.retain(|s| s.dvv.compare(&sibling.dvv) != CausalOrd::Before);
        entry.siblings.push(sibling);
        true
    }

    /// All siblings of `key` (for replication fan-out).
    pub fn siblings(&self, key: Key) -> &[Sibling] {
        self.entries.get(&key).map(|e| e.siblings.as_slice()).unwrap_or(&[])
    }

    /// Iterate all keys.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.entries.keys().copied()
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Total sibling count (metadata-overhead metric: >1 per key means
    /// unresolved concurrency).
    pub fn sibling_count(&self) -> usize {
        self.entries.values().map(|e| e.siblings.len()).sum()
    }

    /// Convergence predicate: same keys, same sibling sets (by dot).
    pub fn same_siblings(&self, other: &SiblingStore) -> bool {
        if self.entries.len() != other.entries.len() {
            return false;
        }
        self.entries.iter().all(|(k, e)| {
            let mut a: Vec<Dot> = e.siblings.iter().map(|s| s.dvv.dot).collect();
            let mut b: Vec<Dot> = other.siblings(*k).iter().map(|s| s.dvv.dot).collect();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_empty_key() {
        let s = SiblingStore::new(0);
        let r = s.read(1);
        assert!(r.values.is_empty());
        assert!(r.context.is_empty());
    }

    #[test]
    fn write_then_read() {
        let mut s = SiblingStore::new(0);
        s.write(1, Value::from_u64(10), &VersionVector::new(), 5);
        let r = s.read(1);
        assert_eq!(r.values, vec![Value::from_u64(10)]);
        assert_eq!(r.context.get(0), 1);
    }

    #[test]
    fn contextual_write_supersedes() {
        let mut s = SiblingStore::new(0);
        s.write(1, Value::from_u64(10), &VersionVector::new(), 0);
        let r = s.read(1);
        s.write(1, Value::from_u64(20), &r.context, 0);
        let r2 = s.read(1);
        assert_eq!(r2.values, vec![Value::from_u64(20)]);
        assert_eq!(s.sibling_count(), 1);
    }

    #[test]
    fn blind_write_creates_sibling() {
        let mut s = SiblingStore::new(0);
        s.write(1, Value::from_u64(10), &VersionVector::new(), 0);
        // A client that never read writes blindly: concurrent sibling.
        s.write(1, Value::from_u64(20), &VersionVector::new(), 0);
        let r = s.read(1);
        assert_eq!(r.values.len(), 2);
    }

    #[test]
    fn resolving_write_clears_siblings() {
        let mut s = SiblingStore::new(0);
        s.write(1, Value::from_u64(10), &VersionVector::new(), 0);
        s.write(1, Value::from_u64(20), &VersionVector::new(), 0);
        let r = s.read(1);
        s.write(1, Value::from_u64(30), &r.context, 0);
        assert_eq!(s.read(1).values, vec![Value::from_u64(30)]);
    }

    #[test]
    fn apply_remote_is_idempotent() {
        let mut a = SiblingStore::new(0);
        let mut b = SiblingStore::new(1);
        a.write(1, Value::from_u64(10), &VersionVector::new(), 0);
        let sib = a.siblings(1)[0].clone();
        assert!(b.apply_remote(1, sib.clone()));
        assert!(!b.apply_remote(1, sib));
        assert_eq!(b.sibling_count(), 1);
    }

    #[test]
    fn apply_remote_keeps_concurrent_drops_dominated() {
        let mut a = SiblingStore::new(0);
        let mut b = SiblingStore::new(1);
        // a writes v1; b receives it, reads, writes v2 (supersedes v1).
        a.write(1, Value::from_u64(1), &VersionVector::new(), 0);
        let v1 = a.siblings(1)[0].clone();
        b.apply_remote(1, v1.clone());
        let ctx = b.read(1).context;
        b.write(1, Value::from_u64(2), &ctx, 0);
        let v2 = b.siblings(1)[0].clone();
        // a receives v2: v1 must be dropped.
        assert!(a.apply_remote(1, v2));
        assert_eq!(a.read(1).values, vec![Value::from_u64(2)]);
        // Re-applying the obsolete v1 is rejected.
        assert!(!a.apply_remote(1, v1));
        assert_eq!(a.sibling_count(), 1);
    }

    #[test]
    fn cross_replica_convergence() {
        let mut a = SiblingStore::new(0);
        let mut b = SiblingStore::new(1);
        a.write(1, Value::from_u64(1), &VersionVector::new(), 0);
        b.write(1, Value::from_u64(2), &VersionVector::new(), 0);
        // Exchange everything both ways.
        for s in a.siblings(1).to_vec() {
            b.apply_remote(1, s);
        }
        for s in b.siblings(1).to_vec() {
            a.apply_remote(1, s);
        }
        assert!(a.same_siblings(&b));
        assert_eq!(a.read(1).values.len(), 2);
    }

    #[test]
    fn same_siblings_detects_divergence() {
        let mut a = SiblingStore::new(0);
        let b = SiblingStore::new(1);
        assert!(a.same_siblings(&b));
        a.write(1, Value::from_u64(1), &VersionVector::new(), 0);
        assert!(!a.same_siblings(&b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After fully exchanging siblings in any interleaving, replicas
        /// converge to the same sibling sets.
        #[test]
        fn full_exchange_converges(
            script in proptest::collection::vec((0usize..3, 0u64..3, proptest::bool::ANY), 1..25)
        ) {
            let mut reps =
                [SiblingStore::new(0), SiblingStore::new(1), SiblingStore::new(2)];
            let mut next_val = 0u64;
            for (r, key, read_first) in script {
                let ctx = if read_first {
                    reps[r].read(key).context
                } else {
                    VersionVector::new()
                };
                next_val += 1;
                reps[r].write(key, Value::from_u64(next_val), &ctx, 0);
            }
            // Full pairwise exchange until fixpoint (bounded rounds).
            for _ in 0..4 {
                for i in 0..3 {
                    for j in 0..3 {
                        if i == j { continue; }
                        let keys: Vec<Key> = reps[i].keys().collect();
                        for k in keys {
                            for s in reps[i].siblings(k).to_vec() {
                                reps[j].apply_remote(k, s);
                            }
                        }
                    }
                }
            }
            prop_assert!(reps[0].same_siblings(&reps[1]));
            prop_assert!(reps[1].same_siblings(&reps[2]));
            // Sibling sets are pairwise concurrent after convergence.
            let keys: Vec<Key> = reps[0].keys().collect();
            for k in keys {
                let sibs = reps[0].siblings(k);
                for i in 0..sibs.len() {
                    for j in (i + 1)..sibs.len() {
                        let ord = sibs[i].dvv.compare(&sibs[j].dvv);
                        prop_assert!(ord.is_concurrent(), "{:?}", ord);
                    }
                }
            }
        }
    }
}
