//! A write-ahead log with replay and snapshot-truncation.
//!
//! Replicas append every accepted write before applying it to their
//! [`crate::MvStore`]; recovery replays the tail. In the simulator the
//! "disk" is a `Vec`, but the protocol-visible contract — sequenced,
//! append-only, replayable, truncatable after a snapshot — matches what a
//! durable log provides, and the recovery tests exercise exactly that
//! contract.

use crate::store::MvStore;
use crate::value::{Key, Value};
use clocks::LamportTimestamp;
use serde::{Deserialize, Serialize};

/// One log record: a durable write.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Monotone sequence number (1-based).
    pub seq: u64,
    /// Key written.
    pub key: Key,
    /// Value written.
    pub value: Value,
    /// Write timestamp.
    pub ts: LamportTimestamp,
    /// Origin write time (simulation microseconds).
    pub written_at: u64,
}

/// An append-only write-ahead log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Wal {
    records: Vec<LogRecord>,
    /// Sequence number of the last record truncated away (snapshot point).
    truncated_through: u64,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a write; returns its sequence number.
    pub fn append(&mut self, key: Key, value: Value, ts: LamportTimestamp, written_at: u64) -> u64 {
        let seq = self.next_seq();
        self.records.push(LogRecord { seq, key, value, ts, written_at });
        seq
    }

    /// The next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.truncated_through + self.records.len() as u64 + 1
    }

    /// The highest assigned sequence number (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq() - 1
    }

    /// Records with `seq > after`, in order. Used both for recovery replay
    /// and for log-shipping replication (send the suffix a follower lacks).
    pub fn tail(&self, after: u64) -> &[LogRecord] {
        let start = after.saturating_sub(self.truncated_through) as usize;
        let start = start.min(self.records.len());
        // `after` below the truncation point would require a snapshot; the
        // caller is expected to check `truncated_through` first.
        &self.records[start..]
    }

    /// Sequence number through which records have been truncated.
    pub fn truncated_through(&self) -> u64 {
        self.truncated_through
    }

    /// Reset the log to an empty state whose sequence space continues
    /// from `seq` (used when a replica is promoted to primary after
    /// installing state through `seq`, or re-joins after demotion and
    /// must discard an un-replicated tail).
    pub fn reset_to(&mut self, seq: u64) {
        self.records.clear();
        self.truncated_through = seq;
    }

    /// Drop records with `seq <= through` (after they are covered by a
    /// snapshot). Returns how many records were dropped.
    pub fn truncate_through(&mut self, through: u64) -> usize {
        if through <= self.truncated_through {
            return 0;
        }
        let n = (through - self.truncated_through) as usize;
        let n = n.min(self.records.len());
        self.records.drain(..n);
        self.truncated_through += n as u64;
        n
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no retained records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replay every retained record into `store` (recovery). Idempotent:
    /// `MvStore::put` ignores duplicate `(key, ts)` pairs.
    pub fn replay_into(&self, store: &mut MvStore) -> usize {
        let mut applied = 0;
        for r in &self.records {
            if store.put(r.key, r.value.clone(), r.ts, r.written_at) {
                applied += 1;
            }
        }
        applied
    }

    /// Rebuild a store from scratch: snapshot (if any) + log replay.
    pub fn recover(&self, snapshot: Option<&MvStore>) -> MvStore {
        let mut store = snapshot.cloned().unwrap_or_default();
        self.replay_into(&mut store);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(c: u64) -> LamportTimestamp {
        LamportTimestamp::new(c, 0)
    }

    fn build_log(n: u64) -> Wal {
        let mut w = Wal::new();
        for i in 1..=n {
            w.append(i % 3, Value::from_u64(i), ts(i), i * 10);
        }
        w
    }

    #[test]
    fn append_assigns_sequential_seqs() {
        let w = build_log(5);
        let seqs: Vec<u64> = w.tail(0).iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(w.last_seq(), 5);
        assert_eq!(w.next_seq(), 6);
    }

    #[test]
    fn tail_returns_suffix() {
        let w = build_log(5);
        let t = w.tail(3);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].seq, 4);
        assert!(w.tail(5).is_empty());
        assert!(w.tail(99).is_empty());
    }

    #[test]
    fn recovery_equals_direct_application() {
        let w = build_log(20);
        let mut direct = MvStore::new();
        for r in w.tail(0) {
            direct.put(r.key, r.value.clone(), r.ts, r.written_at);
        }
        let recovered = w.recover(None);
        assert_eq!(recovered, direct);
    }

    #[test]
    fn replay_is_idempotent() {
        let w = build_log(10);
        let mut store = MvStore::new();
        let first = w.replay_into(&mut store);
        let second = w.replay_into(&mut store);
        assert_eq!(first, 10);
        assert_eq!(second, 0);
    }

    #[test]
    fn truncate_then_recover_with_snapshot() {
        let mut w = build_log(10);
        // Take a "snapshot" of the state through seq 6, then truncate.
        let mut snap = MvStore::new();
        for r in w.tail(0).iter().filter(|r| r.seq <= 6) {
            snap.put(r.key, r.value.clone(), r.ts, r.written_at);
        }
        assert_eq!(w.truncate_through(6), 6);
        assert_eq!(w.truncated_through(), 6);
        assert_eq!(w.len(), 4);
        // Recovery from snapshot + tail equals the full state.
        let full = build_log(10).recover(None);
        let recovered = w.recover(Some(&snap));
        assert_eq!(recovered, full);
    }

    #[test]
    fn truncate_is_monotone_and_bounded() {
        let mut w = build_log(5);
        assert_eq!(w.truncate_through(3), 3);
        assert_eq!(w.truncate_through(2), 0); // already truncated
        assert_eq!(w.truncate_through(100), 2); // clamps to available
        assert!(w.is_empty());
        assert_eq!(w.next_seq(), 6); // seq space keeps advancing
        let seq = w.append(1, Value::from_u64(99), ts(99), 0);
        assert_eq!(seq, 6);
    }

    #[test]
    fn reset_to_continues_sequence_space() {
        let mut w = build_log(5);
        w.reset_to(10);
        assert!(w.is_empty());
        assert_eq!(w.truncated_through(), 10);
        assert_eq!(w.append(1, Value::from_u64(1), ts(1), 0), 11);
    }

    #[test]
    fn tail_after_truncation_respects_offsets() {
        let mut w = build_log(10);
        w.truncate_through(4);
        let t = w.tail(6);
        assert_eq!(t.first().map(|r| r.seq), Some(7));
        let all_retained = w.tail(4);
        assert_eq!(all_retained.first().map(|r| r.seq), Some(5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Snapshot-at-k + truncate + replay always reconstructs the same
        /// store as replaying the whole log, for any snapshot point.
        #[test]
        fn snapshot_truncate_recover_equivalence(
            writes in proptest::collection::vec((0u64..5, 1u64..1000), 1..40),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut w = Wal::new();
            let mut full = MvStore::new();
            for (i, &(k, v)) in writes.iter().enumerate() {
                let stamp = LamportTimestamp::new(i as u64 + 1, 0);
                w.append(k, Value::from_u64(v), stamp, 0);
                full.put(k, Value::from_u64(v), stamp, 0);
            }
            let cut = (writes.len() as f64 * cut_frac) as u64;
            let mut snap = MvStore::new();
            for r in w.tail(0).iter().filter(|r| r.seq <= cut) {
                snap.put(r.key, r.value.clone(), r.ts, r.written_at);
            }
            w.truncate_through(cut);
            let recovered = w.recover(Some(&snap));
            prop_assert_eq!(recovered, full);
        }

        /// Structural invariants hold under *any* interleaving of
        /// `append`, `truncate_through`, and `reset_to`:
        ///
        /// * `next_seq == truncated_through + len + 1` and
        ///   `last_seq == next_seq - 1`, always;
        /// * the sequence space never moves backwards (`reset_to` is only
        ///   ever called with a seq at or past the current one, matching
        ///   how the primary-copy protocol uses it);
        /// * `truncate_through` returns exactly the number of records it
        ///   dropped and `truncated_through` is monotone;
        /// * retained records are contiguous, ascending, and start right
        ///   after the truncation point.
        #[test]
        fn seq_space_invariants_under_random_op_sequences(
            ops in proptest::collection::vec((0u8..3, 0u64..10), 1..60),
        ) {
            let mut w = Wal::new();
            let mut count = 0u64;
            for &(op, arg) in &ops {
                let next_before = w.next_seq();
                let trunc_before = w.truncated_through();
                let len_before = w.len();
                match op {
                    0 => {
                        count += 1;
                        let seq = w.append(arg, Value::from_u64(count), LamportTimestamp::new(count, 0), 0);
                        prop_assert_eq!(seq, next_before);
                        prop_assert_eq!(w.len(), len_before + 1);
                    }
                    1 => {
                        let through = trunc_before + arg; // may exceed last_seq: must clamp
                        let dropped = w.truncate_through(through);
                        prop_assert_eq!(dropped, len_before - w.len());
                        prop_assert!(w.truncated_through() >= trunc_before);
                        prop_assert!(w.truncated_through() <= w.last_seq().max(trunc_before));
                    }
                    _ => {
                        let target = w.last_seq() + arg; // never rewind the seq space
                        w.reset_to(target);
                        prop_assert_eq!(w.len(), 0);
                        prop_assert_eq!(w.truncated_through(), target);
                    }
                }
                prop_assert_eq!(w.next_seq(), w.truncated_through() + w.len() as u64 + 1);
                prop_assert_eq!(w.last_seq(), w.next_seq() - 1);
                prop_assert!(w.next_seq() >= next_before, "sequence space moved backwards");
                let retained = w.tail(w.truncated_through());
                prop_assert_eq!(retained.len(), w.len());
                for (i, r) in retained.iter().enumerate() {
                    prop_assert_eq!(r.seq, w.truncated_through() + i as u64 + 1);
                }
            }
        }

        /// `tail(after)` returns exactly the retained records with
        /// `seq > after`, for any `after` at or past the truncation point.
        #[test]
        fn tail_is_exactly_the_suffix_past_after(
            n in 0u64..40,
            cut in 0u64..50,
            after_off in 0u64..50,
        ) {
            let mut w = Wal::new();
            for i in 1..=n {
                w.append(i % 4, Value::from_u64(i), LamportTimestamp::new(i, 0), 0);
            }
            w.truncate_through(cut.min(n));
            let after = w.truncated_through() + after_off;
            let tail = w.tail(after);
            let expected: Vec<u64> = (after + 1..=w.last_seq()).collect();
            prop_assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), expected);
        }

        /// Replay is idempotent even on logs that contain duplicate
        /// `(key, ts)` records: recovery applies each version once, so a
        /// store rebuilt from a noisy log equals one built from the
        /// deduplicated history.
        #[test]
        fn replay_dedups_by_key_and_stamp(
            writes in proptest::collection::vec((0u64..4, 1u64..8), 1..40),
        ) {
            let mut w = Wal::new();
            let mut dedup = MvStore::new();
            for &(k, c) in &writes {
                let stamp = LamportTimestamp::new(c, 0);
                w.append(k, Value::from_u64(c), stamp, 0);
                dedup.put(k, Value::from_u64(c), stamp, 0);
            }
            let recovered = w.recover(None);
            prop_assert_eq!(&recovered, &dedup);
            // A second replay into the recovered store applies nothing.
            let mut again = recovered.clone();
            prop_assert_eq!(w.replay_into(&mut again), 0);
            prop_assert_eq!(again, recovered);
        }
    }
}
