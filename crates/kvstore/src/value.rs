//! Keys and values.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A key. Experiments use dense `u64` key spaces; applications that want
/// string keys hash them into this space.
pub type Key = u64;

/// An immutable value: a cheaply clonable byte string.
///
/// The experiment suite encodes a globally unique `u64` write id in every
/// value so that consistency checkers can identify which write a read
/// observed; [`Value::from_u64`] / [`Value::as_u64`] implement that
/// convention (little-endian, exactly 8 bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value(Bytes);

impl Value {
    /// An empty value.
    pub fn empty() -> Self {
        Value(Bytes::new())
    }

    /// Wrap raw bytes.
    pub fn from_bytes(b: impl Into<Bytes>) -> Self {
        Value(b.into())
    }

    /// Encode a `u64` write id.
    pub fn from_u64(x: u64) -> Self {
        Value(Bytes::copy_from_slice(&x.to_le_bytes()))
    }

    /// Decode a `u64` write id; `None` if the value is not 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        let arr: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_u64() {
            Some(x) => write!(f, "#{x}"),
            None => write!(f, "{}b", self.0.len()),
        }
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::from_u64(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        for x in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Value::from_u64(x).as_u64(), Some(x));
        }
    }

    #[test]
    fn non_u64_values_decode_to_none() {
        assert_eq!(Value::from("hi").as_u64(), None);
        assert_eq!(Value::empty().as_u64(), None);
        assert_eq!(Value::from("exactly8!").as_u64(), None); // 9 bytes
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Value::from_u64(7)), "#7");
        assert_eq!(format!("{}", Value::from("abc")), "3b");
    }

    #[test]
    fn emptiness_and_len() {
        assert!(Value::empty().is_empty());
        assert_eq!(Value::from("xyz").len(), 3);
        assert_eq!(Value::from("xyz").as_bytes(), b"xyz");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::from_u64(9);
        let w = v.clone();
        assert_eq!(v, w);
    }
}
