#![deny(missing_docs)]
//! # kvstore — the single-replica storage substrate
//!
//! Every replica in the `replication` crate is backed by one of these: a
//! multi-version in-memory key-value store with a write-ahead log. The
//! pieces:
//!
//! * [`Value`] — cheap, immutable byte values ([`bytes::Bytes`]) with `u64`
//!   encode/decode helpers (experiments store unique write ids as values).
//! * [`Version`] / [`MvStore`] — timestamp-ordered version chains per key;
//!   supports latest reads, snapshot reads at a timestamp, and range scans.
//!   This is the store for LWW-arbitrated and primary-copy protocols.
//! * [`SiblingStore`] — a dotted-version-vector store keeping concurrent
//!   siblings per key (the Dynamo/Riak model); used by the multi-master
//!   protocols when the conflict policy is "expose siblings".
//! * [`Wal`] — an append-only write-ahead log with sequence numbers,
//!   replay, and snapshot-truncation; recovery tests rebuild a store from
//!   the log and check equivalence.

pub mod siblings;
pub mod store;
pub mod value;
pub mod wal;

pub use siblings::SiblingStore;
pub use store::{MvStore, Version};
pub use value::{Key, Value};
pub use wal::{LogRecord, Wal};
