//! Hybrid logical clocks (Kulkarni et al., 2014).
//!
//! An HLC timestamp is `(physical, logical, actor)`: it stays within the
//! clock-skew bound of physical time while still respecting causality, so
//! timestamps can double as human-meaningful times *and* LWW tie-breakers.
//! In this workspace physical time is simulation time (microseconds), so
//! HLC behaviour under skew is tested by feeding skewed inputs explicitly.

use crate::ActorId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A hybrid logical clock timestamp.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct HybridTimestamp {
    /// Physical component (microseconds, e.g. `SimTime::as_micros`).
    pub physical: u64,
    /// Logical component; breaks ties within one physical tick.
    pub logical: u32,
    /// Actor id; breaks ties across actors deterministically.
    pub actor: ActorId,
}

impl fmt::Display for HybridTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}@{}", self.physical, self.logical, self.actor)
    }
}

/// A hybrid logical clock.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HybridClock {
    actor: ActorId,
    last: HybridTimestamp,
}

impl HybridClock {
    /// A fresh clock for `actor`.
    pub fn new(actor: ActorId) -> Self {
        HybridClock { actor, last: HybridTimestamp { physical: 0, logical: 0, actor } }
    }

    /// The most recent timestamp issued or observed.
    pub fn last(&self) -> HybridTimestamp {
        self.last
    }

    /// Issue a timestamp for a local event at physical time `now_us`.
    ///
    /// If the physical clock has advanced past everything seen, the logical
    /// component resets to zero; otherwise it increments.
    pub fn tick(&mut self, now_us: u64) -> HybridTimestamp {
        if now_us > self.last.physical {
            self.last = HybridTimestamp { physical: now_us, logical: 0, actor: self.actor };
        } else {
            self.last.logical += 1;
        }
        self.last
    }

    /// Issue a timestamp for receipt of a message stamped `remote` at
    /// physical time `now_us`.
    pub fn observe(&mut self, remote: HybridTimestamp, now_us: u64) -> HybridTimestamp {
        let max_phys = now_us.max(self.last.physical).max(remote.physical);
        let logical = if max_phys == self.last.physical && max_phys == remote.physical {
            self.last.logical.max(remote.logical) + 1
        } else if max_phys == self.last.physical {
            self.last.logical + 1
        } else if max_phys == remote.physical {
            remote.logical + 1
        } else {
            0
        };
        self.last = HybridTimestamp { physical: max_phys, logical, actor: self.actor };
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_tracks_physical_time() {
        let mut c = HybridClock::new(1);
        let t1 = c.tick(100);
        assert_eq!((t1.physical, t1.logical), (100, 0));
        let t2 = c.tick(200);
        assert_eq!((t2.physical, t2.logical), (200, 0));
        assert!(t2 > t1);
    }

    #[test]
    fn stalled_physical_clock_bumps_logical() {
        let mut c = HybridClock::new(1);
        let t1 = c.tick(100);
        let t2 = c.tick(100);
        let t3 = c.tick(90); // physical clock went backwards
        assert_eq!((t2.physical, t2.logical), (100, 1));
        assert_eq!((t3.physical, t3.logical), (100, 2));
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn observe_jumps_to_remote_future() {
        let mut c = HybridClock::new(1);
        c.tick(100);
        let remote = HybridTimestamp { physical: 500, logical: 3, actor: 2 };
        let t = c.observe(remote, 110);
        assert_eq!((t.physical, t.logical), (500, 4));
        assert!(t > remote);
    }

    #[test]
    fn observe_with_advanced_local_physical() {
        let mut c = HybridClock::new(1);
        c.tick(100);
        let remote = HybridTimestamp { physical: 50, logical: 9, actor: 2 };
        let t = c.observe(remote, 120);
        // Physical time 120 dominates both; logical resets.
        assert_eq!((t.physical, t.logical), (120, 0));
        assert!(t > remote);
    }

    #[test]
    fn observe_tie_on_all_three() {
        let mut c = HybridClock::new(1);
        c.tick(100); // last = (100, 0)
        let remote = HybridTimestamp { physical: 100, logical: 5, actor: 2 };
        let t = c.observe(remote, 100);
        assert_eq!((t.physical, t.logical), (100, 6));
    }

    #[test]
    fn causality_preserved_across_exchange() {
        let mut a = HybridClock::new(1);
        let mut b = HybridClock::new(2);
        let send = a.tick(1000);
        // b's physical clock is behind (skew) but the stamp still advances.
        let recv = b.observe(send, 900);
        assert!(recv > send);
        let next = b.tick(901);
        assert!(next > recv);
    }

    #[test]
    fn display() {
        let t = HybridTimestamp { physical: 42, logical: 7, actor: 3 };
        assert_eq!(format!("{t}"), "42+7@3");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Issued stamps are strictly increasing no matter how the physical
        /// clock behaves (monotone, stalled, or backwards).
        #[test]
        fn stamps_strictly_increase(times in proptest::collection::vec(0u64..1000, 1..100)) {
            let mut c = HybridClock::new(0);
            let mut prev = None;
            for t in times {
                let ts = c.tick(t);
                if let Some(p) = prev {
                    prop_assert!(ts > p, "{:?} !> {:?}", ts, p);
                }
                prev = Some(ts);
            }
        }

        /// The physical component never drifts more than one step beyond the
        /// max physical input seen (HLC boundedness).
        #[test]
        fn physical_component_bounded(inputs in proptest::collection::vec((0u64..1000, 0u64..1000, 0u32..5), 1..50)) {
            let mut c = HybridClock::new(0);
            let mut max_seen = 0u64;
            for (now, rphys, rlog) in inputs {
                max_seen = max_seen.max(now).max(rphys);
                let remote = HybridTimestamp { physical: rphys, logical: rlog, actor: 1 };
                let ts = c.observe(remote, now);
                prop_assert!(ts.physical <= max_seen);
                let advances = ts > remote || ts.physical > rphys;
                prop_assert!(advances);
            }
        }
    }
}
