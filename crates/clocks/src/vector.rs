//! Vector clocks, version vectors, and dotted version vectors.
//!
//! A [`VectorClock`] maps each actor to the count of its events seen. Two
//! clocks compare as [`CausalOrd`]: element-wise dominance gives
//! happens-before exactly. A **version vector** is the same lattice applied
//! to *sets of writes seen by a replica*; we expose it as a type alias with
//! the semantics living in how replication and session code use it.
//!
//! A [`Dot`] names a single write event `(actor, counter)`; a
//! [`DottedVersionVector`] pairs a dot with a causal-context version vector
//! and is the standard fix for false-concurrency sibling explosion in
//! multi-value registers (Preguiça et al.).

use crate::ordering::CausalOrd;
use crate::ActorId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A vector clock: one monotone counter per actor.
///
/// Uses a `BTreeMap` so iteration (and therefore serialization, hashing of
/// serialized forms, and debug output) is deterministic — the experiment
/// suite depends on byte-stable output for fixed seeds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    entries: BTreeMap<ActorId, u64>,
}

/// A version vector: identical lattice to [`VectorClock`], used to
/// summarize which writes a replica (or session) has observed.
pub type VersionVector = VectorClock;

impl VectorClock {
    /// The empty (bottom) clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(actor, counter)` pairs. Later duplicates win.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ActorId, u64)>) -> Self {
        let mut vc = VectorClock::new();
        for (a, c) in pairs {
            if c > 0 {
                vc.entries.insert(a, c);
            }
        }
        vc
    }

    /// The counter for `actor` (0 if absent — absent and zero are
    /// indistinguishable, keeping the representation canonical).
    pub fn get(&self, actor: ActorId) -> u64 {
        self.entries.get(&actor).copied().unwrap_or(0)
    }

    /// Tick `actor`'s component and return its new value.
    pub fn increment(&mut self, actor: ActorId) -> u64 {
        let e = self.entries.entry(actor).or_insert(0);
        *e += 1;
        *e
    }

    /// Set `actor`'s component to `max(current, counter)`.
    pub fn observe(&mut self, actor: ActorId, counter: u64) {
        if counter == 0 {
            return;
        }
        let e = self.entries.entry(actor).or_insert(0);
        *e = (*e).max(counter);
    }

    /// Join (least upper bound): element-wise max, in place.
    pub fn merge(&mut self, other: &VectorClock) {
        for (&a, &c) in &other.entries {
            self.observe(a, c);
        }
    }

    /// Join returning a new clock.
    pub fn merged(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Compare under happens-before.
    pub fn compare(&self, other: &VectorClock) -> CausalOrd {
        let mut self_gt = false;
        let mut other_gt = false;
        for (&a, &c) in &self.entries {
            match c.cmp(&other.get(a)) {
                std::cmp::Ordering::Greater => self_gt = true,
                std::cmp::Ordering::Less => other_gt = true,
                std::cmp::Ordering::Equal => {}
            }
        }
        for (&a, &c) in &other.entries {
            if c > self.get(a) {
                other_gt = true;
            }
        }
        CausalOrd::from_dominance(self_gt, other_gt)
    }

    /// True if every component of `self` is `>=` the corresponding
    /// component of `other` (i.e. `self` has seen everything `other` has).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        other.entries.iter().all(|(&a, &c)| self.get(a) >= c)
    }

    /// True if the two clocks are concurrent.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self.compare(other).is_concurrent()
    }

    /// Number of actors with nonzero components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no actor has a nonzero component.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(actor, counter)` pairs in ascending actor order.
    pub fn iter(&self) -> impl Iterator<Item = (ActorId, u64)> + '_ {
        self.entries.iter().map(|(&a, &c)| (a, c))
    }

    /// Sum of all components — a scalar "how much have I seen" measure used
    /// for version-based staleness metrics.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}:{c}")?;
        }
        write!(f, "}}")
    }
}

/// A dot: the identity of one write event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dot {
    /// The actor (replica) that performed the write.
    pub actor: ActorId,
    /// The actor's write counter at the time (1-based).
    pub counter: u64,
}

impl Dot {
    /// Construct a dot.
    pub fn new(actor: ActorId, counter: u64) -> Self {
        Dot { actor, counter }
    }
}

impl fmt::Display for Dot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}.{})", self.actor, self.counter)
    }
}

/// A dotted version vector: a single write event (`dot`) plus the causal
/// context the writer had observed (`context`).
///
/// A DVV `v` is **obsolete** with respect to a context `ctx` iff
/// `ctx[v.dot.actor] >= v.dot.counter` — someone who has seen that write
/// has superseded it. Sibling sets keep exactly the non-obsolete values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DottedVersionVector {
    /// The write event this value was created by.
    pub dot: Dot,
    /// Everything the writer had seen when it wrote.
    pub context: VersionVector,
}

impl DottedVersionVector {
    /// Construct from a dot and its causal context.
    pub fn new(dot: Dot, context: VersionVector) -> Self {
        DottedVersionVector { dot, context }
    }

    /// True if this value's write is covered by `ctx` (i.e. `ctx` has seen
    /// the dot), meaning the value is obsolete for a writer with that
    /// context.
    pub fn covered_by(&self, ctx: &VersionVector) -> bool {
        ctx.get(self.dot.actor) >= self.dot.counter
    }

    /// Compare two DVVs causally: `self` precedes `other` iff `other`'s
    /// context covers `self`'s dot.
    pub fn compare(&self, other: &DottedVersionVector) -> CausalOrd {
        if self.dot == other.dot {
            return CausalOrd::Equal;
        }
        let self_covered = self.covered_by(&other.context);
        let other_covered = other.covered_by(&self.context);
        match (self_covered, other_covered) {
            (true, true) => CausalOrd::Equal, // mutually covered: same logical write set
            (true, false) => CausalOrd::Before,
            (false, true) => CausalOrd::After,
            (false, false) => CausalOrd::Concurrent,
        }
    }

    /// The full event set this DVV represents: context joined with the dot.
    pub fn event_set(&self) -> VersionVector {
        let mut vv = self.context.clone();
        vv.observe(self.dot.actor, self.dot.counter);
        vv
    }
}

/// Reduce a sibling set: keep only causally-maximal values, deduplicating
/// identical dots.
///
/// Obsolescence is judged against each other sibling's *context* (what its
/// writer had actually seen), never against `context ∪ dot`: a dot
/// `(r, k)` does not imply its writer saw `(r, k-1)` — blind writes from
/// the same replica are concurrent, and folding the dot into the coverage
/// check would silently drop them (the DVV "gap" pitfall).
pub fn prune_siblings(mut siblings: Vec<DottedVersionVector>) -> Vec<DottedVersionVector> {
    siblings.sort_by_key(|d| d.dot);
    siblings.dedup_by_key(|d| d.dot);
    let keep: Vec<bool> = siblings
        .iter()
        .map(|s| {
            !siblings
                .iter()
                .any(|other| other.dot != s.dot && s.compare(other) == CausalOrd::Before)
        })
        .collect();
    siblings.into_iter().zip(keep).filter_map(|(s, k)| k.then_some(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_clocks_are_equal() {
        let a = VectorClock::new();
        let b = VectorClock::new();
        assert_eq!(a.compare(&b), CausalOrd::Equal);
        assert!(a.dominates(&b));
        assert!(a.is_empty());
    }

    #[test]
    fn increment_creates_after() {
        let a = VectorClock::new();
        let mut b = a.clone();
        b.increment(1);
        assert_eq!(b.compare(&a), CausalOrd::After);
        assert_eq!(a.compare(&b), CausalOrd::Before);
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
    }

    #[test]
    fn divergent_clocks_are_concurrent() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.increment(1);
        b.increment(2);
        assert_eq!(a.compare(&b), CausalOrd::Concurrent);
        assert!(a.concurrent(&b));
        assert!(!a.dominates(&b) && !b.dominates(&a));
    }

    #[test]
    fn merge_is_least_upper_bound() {
        let a = VectorClock::from_pairs([(1, 3), (2, 1)]);
        let b = VectorClock::from_pairs([(1, 1), (3, 4)]);
        let m = a.merged(&b);
        assert_eq!(m, VectorClock::from_pairs([(1, 3), (2, 1), (3, 4)]));
        assert!(m.dominates(&a) && m.dominates(&b));
        assert_eq!(m.total(), 8);
    }

    #[test]
    fn zero_components_are_canonical() {
        let a = VectorClock::from_pairs([(1, 0), (2, 5)]);
        let b = VectorClock::from_pairs([(2, 5)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        let mut c = VectorClock::new();
        c.observe(7, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn observe_takes_max() {
        let mut a = VectorClock::new();
        a.observe(1, 5);
        a.observe(1, 3);
        assert_eq!(a.get(1), 5);
        a.observe(1, 9);
        assert_eq!(a.get(1), 9);
    }

    #[test]
    fn display_is_deterministic() {
        let a = VectorClock::from_pairs([(3, 1), (1, 2)]);
        assert_eq!(format!("{a}"), "{1:2,3:1}");
        assert_eq!(format!("{}", Dot::new(2, 7)), "(2.7)");
    }

    #[test]
    fn dvv_write_supersedes_what_it_saw() {
        // Writer saw {1:1}, writes dot (2,1).
        let v1 = DottedVersionVector::new(Dot::new(1, 1), VectorClock::new());
        let v2 = DottedVersionVector::new(Dot::new(2, 1), VectorClock::from_pairs([(1, 1)]));
        assert_eq!(v1.compare(&v2), CausalOrd::Before);
        assert_eq!(v2.compare(&v1), CausalOrd::After);
    }

    #[test]
    fn dvv_blind_writes_are_concurrent() {
        let v1 = DottedVersionVector::new(Dot::new(1, 1), VectorClock::new());
        let v2 = DottedVersionVector::new(Dot::new(2, 1), VectorClock::new());
        assert_eq!(v1.compare(&v2), CausalOrd::Concurrent);
    }

    #[test]
    fn prune_removes_covered_siblings() {
        let old = DottedVersionVector::new(Dot::new(1, 1), VectorClock::new());
        let newer = DottedVersionVector::new(Dot::new(2, 1), VectorClock::from_pairs([(1, 1)]));
        let concurrent = DottedVersionVector::new(Dot::new(3, 1), VectorClock::new());
        let pruned = prune_siblings(vec![old.clone(), newer.clone(), concurrent.clone()]);
        assert!(!pruned.contains(&old));
        assert!(pruned.contains(&newer));
        assert!(pruned.contains(&concurrent));
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn prune_dedups_identical_dots() {
        let v = DottedVersionVector::new(Dot::new(1, 1), VectorClock::new());
        let pruned = prune_siblings(vec![v.clone(), v.clone()]);
        assert_eq!(pruned.len(), 1);
    }

    #[test]
    fn event_set_includes_dot() {
        let v = DottedVersionVector::new(Dot::new(2, 3), VectorClock::from_pairs([(1, 1)]));
        let es = v.event_set();
        assert_eq!(es.get(1), 1);
        assert_eq!(es.get(2), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_clock() -> impl Strategy<Value = VectorClock> {
        proptest::collection::btree_map(0u64..6, 1u64..20, 0..6).prop_map(VectorClock::from_pairs)
    }

    proptest! {
        /// Merge is commutative.
        #[test]
        fn merge_commutative(a in arb_clock(), b in arb_clock()) {
            prop_assert_eq!(a.merged(&b), b.merged(&a));
        }

        /// Merge is associative.
        #[test]
        fn merge_associative(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
            prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        }

        /// Merge is idempotent.
        #[test]
        fn merge_idempotent(a in arb_clock()) {
            prop_assert_eq!(a.merged(&a), a);
        }

        /// Merge is an upper bound of both inputs.
        #[test]
        fn merge_is_upper_bound(a in arb_clock(), b in arb_clock()) {
            let m = a.merged(&b);
            prop_assert!(m.dominates(&a));
            prop_assert!(m.dominates(&b));
        }

        /// compare() and dominates() agree.
        #[test]
        fn compare_consistent_with_dominates(a in arb_clock(), b in arb_clock()) {
            match a.compare(&b) {
                CausalOrd::Equal => {
                    prop_assert!(a.dominates(&b) && b.dominates(&a));
                    prop_assert_eq!(&a, &b);
                }
                CausalOrd::After => prop_assert!(a.dominates(&b) && !b.dominates(&a)),
                CausalOrd::Before => prop_assert!(b.dominates(&a) && !a.dominates(&b)),
                CausalOrd::Concurrent => {
                    prop_assert!(!a.dominates(&b) && !b.dominates(&a));
                }
            }
        }

        /// Comparison is antisymmetric under reversal.
        #[test]
        fn compare_antisymmetric(a in arb_clock(), b in arb_clock()) {
            prop_assert_eq!(a.compare(&b), b.compare(&a).reverse());
        }

        /// Incrementing strictly advances the clock.
        #[test]
        fn increment_strictly_advances(a in arb_clock(), actor in 0u64..6) {
            let mut b = a.clone();
            b.increment(actor);
            prop_assert_eq!(b.compare(&a), CausalOrd::After);
        }

        /// Pruned sibling sets are pairwise concurrent.
        #[test]
        fn pruned_siblings_pairwise_concurrent(
            dots in proptest::collection::vec((0u64..4, 1u64..5), 1..6),
            ctxs in proptest::collection::vec(
                proptest::collection::btree_map(0u64..4, 1u64..5, 0..4), 1..6)
        ) {
            let sibs: Vec<DottedVersionVector> = dots
                .iter()
                .zip(ctxs.iter().cycle())
                .map(|(&(a, c), ctx)| {
                    DottedVersionVector::new(Dot::new(a, c), VectorClock::from_pairs(ctx.clone()))
                })
                .collect();
            let pruned = prune_siblings(sibs);
            for i in 0..pruned.len() {
                for j in (i + 1)..pruned.len() {
                    let ord = pruned[i].compare(&pruned[j]);
                    prop_assert!(
                        ord.is_concurrent() || ord == CausalOrd::Equal,
                        "non-concurrent survivors: {:?} vs {:?} -> {:?}",
                        pruned[i], pruned[j], ord
                    );
                }
            }
        }
    }
}
