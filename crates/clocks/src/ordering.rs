//! Causal (partial) ordering between clock values.

use std::cmp::Ordering;

/// The outcome of comparing two events under happens-before.
///
/// Unlike [`std::cmp::Ordering`], a fourth case — [`CausalOrd::Concurrent`]
/// — captures events neither of which happened before the other. This case
/// is exactly where eventual consistency earns its keep: concurrent writes
/// are the ones that need convergent conflict resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalOrd {
    /// The two clock values are identical.
    Equal,
    /// Left happened before right.
    Before,
    /// Right happened before left.
    After,
    /// Neither happened before the other.
    Concurrent,
}

impl CausalOrd {
    /// Build from element-wise dominance flags: does the left have any
    /// component greater than the right (`l_gt`), and vice versa (`r_gt`)?
    pub fn from_dominance(l_gt: bool, r_gt: bool) -> CausalOrd {
        match (l_gt, r_gt) {
            (false, false) => CausalOrd::Equal,
            (false, true) => CausalOrd::Before,
            (true, false) => CausalOrd::After,
            (true, true) => CausalOrd::Concurrent,
        }
    }

    /// Convert to a total order when possible (`None` for concurrent).
    pub fn to_total(self) -> Option<Ordering> {
        match self {
            CausalOrd::Equal => Some(Ordering::Equal),
            CausalOrd::Before => Some(Ordering::Less),
            CausalOrd::After => Some(Ordering::Greater),
            CausalOrd::Concurrent => None,
        }
    }

    /// Reverse the direction of the comparison.
    pub fn reverse(self) -> CausalOrd {
        match self {
            CausalOrd::Before => CausalOrd::After,
            CausalOrd::After => CausalOrd::Before,
            other => other,
        }
    }

    /// True if the left value is dominated by (or equal to) the right.
    pub fn is_descendant_or_equal(self) -> bool {
        matches!(self, CausalOrd::Equal | CausalOrd::Before)
    }

    /// True if the two events are concurrent.
    pub fn is_concurrent(self) -> bool {
        matches!(self, CausalOrd::Concurrent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dominance_covers_all_cases() {
        assert_eq!(CausalOrd::from_dominance(false, false), CausalOrd::Equal);
        assert_eq!(CausalOrd::from_dominance(false, true), CausalOrd::Before);
        assert_eq!(CausalOrd::from_dominance(true, false), CausalOrd::After);
        assert_eq!(CausalOrd::from_dominance(true, true), CausalOrd::Concurrent);
    }

    #[test]
    fn to_total_maps_concurrent_to_none() {
        assert_eq!(CausalOrd::Equal.to_total(), Some(Ordering::Equal));
        assert_eq!(CausalOrd::Before.to_total(), Some(Ordering::Less));
        assert_eq!(CausalOrd::After.to_total(), Some(Ordering::Greater));
        assert_eq!(CausalOrd::Concurrent.to_total(), None);
    }

    #[test]
    fn reverse_is_involutive() {
        for o in [CausalOrd::Equal, CausalOrd::Before, CausalOrd::After, CausalOrd::Concurrent] {
            assert_eq!(o.reverse().reverse(), o);
        }
        assert_eq!(CausalOrd::Before.reverse(), CausalOrd::After);
    }

    #[test]
    fn predicates() {
        assert!(CausalOrd::Equal.is_descendant_or_equal());
        assert!(CausalOrd::Before.is_descendant_or_equal());
        assert!(!CausalOrd::After.is_descendant_or_equal());
        assert!(CausalOrd::Concurrent.is_concurrent());
        assert!(!CausalOrd::Before.is_concurrent());
    }
}
