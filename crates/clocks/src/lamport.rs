//! Lamport scalar clocks and last-writer-wins timestamps.

use crate::ActorId;
use serde::{Deserialize, Serialize};

/// A Lamport logical clock (Lamport 1978, "Time, clocks, and the ordering
/// of events in a distributed system").
///
/// The clock ticks on every local event and merges on every receive, so
/// `a happens-before b` implies `stamp(a) < stamp(b)` — but not conversely:
/// scalar clocks *order* all events, losing concurrency information.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportClock {
    counter: u64,
}

/// A timestamp drawn from a [`LamportClock`], tie-broken by actor id.
///
/// The `(counter, actor)` pair gives a deterministic *total* order, which is
/// what last-writer-wins registers need: every replica picks the same
/// winner regardless of arrival order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LamportTimestamp {
    /// The logical counter (major component).
    pub counter: u64,
    /// Tie-breaking actor id (minor component).
    pub actor: ActorId,
}

impl LamportClock {
    /// A fresh clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current counter value (without ticking).
    pub fn current(&self) -> u64 {
        self.counter
    }

    /// Record a local event: tick and return the new timestamp for `actor`.
    pub fn tick(&mut self, actor: ActorId) -> LamportTimestamp {
        self.counter += 1;
        LamportTimestamp { counter: self.counter, actor }
    }

    /// Record receipt of a message stamped `remote`: the clock jumps past
    /// the remote counter, then ticks.
    pub fn observe(&mut self, remote: LamportTimestamp, actor: ActorId) -> LamportTimestamp {
        self.counter = self.counter.max(remote.counter);
        self.tick(actor)
    }
}

impl LamportTimestamp {
    /// Construct a timestamp directly (mostly for tests and LWW seeds).
    pub fn new(counter: u64, actor: ActorId) -> Self {
        LamportTimestamp { counter, actor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_strictly_monotonic() {
        let mut c = LamportClock::new();
        let a = c.tick(1);
        let b = c.tick(1);
        let d = c.tick(1);
        assert!(a < b && b < d);
    }

    #[test]
    fn observe_jumps_past_remote() {
        let mut c = LamportClock::new();
        c.tick(0);
        let stamped = c.observe(LamportTimestamp::new(100, 9), 0);
        assert_eq!(stamped.counter, 101);
        assert!(stamped > LamportTimestamp::new(100, 9));
    }

    #[test]
    fn observe_of_old_timestamp_still_ticks() {
        let mut c = LamportClock::new();
        for _ in 0..10 {
            c.tick(0);
        }
        let stamped = c.observe(LamportTimestamp::new(2, 5), 0);
        assert_eq!(stamped.counter, 11);
    }

    #[test]
    fn actor_breaks_ties() {
        let a = LamportTimestamp::new(5, 1);
        let b = LamportTimestamp::new(5, 2);
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn happens_before_implies_less_than() {
        // Simulate two actors exchanging a message.
        let mut alice = LamportClock::new();
        let mut bob = LamportClock::new();
        let send = alice.tick(0);
        let recv = bob.observe(send, 1);
        let later = bob.tick(1);
        assert!(send < recv);
        assert!(recv < later);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The total order on timestamps is consistent: exactly one of
        /// `<`, `==`, `>` holds, and it agrees with the tuple order.
        #[test]
        fn timestamp_order_is_total(c1 in 0u64..1000, a1 in 0u64..8, c2 in 0u64..1000, a2 in 0u64..8) {
            let x = LamportTimestamp::new(c1, a1);
            let y = LamportTimestamp::new(c2, a2);
            let by_tuple = (c1, a1).cmp(&(c2, a2));
            prop_assert_eq!(x.cmp(&y), by_tuple);
        }

        /// Observing any sequence of remote stamps keeps the clock ahead of
        /// everything it has seen.
        #[test]
        fn clock_dominates_observed(remotes in proptest::collection::vec((0u64..500, 0u64..8), 0..40)) {
            let mut c = LamportClock::new();
            let mut issued = Vec::new();
            for (counter, actor) in &remotes {
                issued.push(c.observe(LamportTimestamp::new(*counter, *actor), 99));
            }
            for (i, ts) in issued.iter().enumerate() {
                // Each issued stamp exceeds the remote it observed.
                prop_assert!(ts.counter > remotes[i].0);
            }
            // And stamps are strictly increasing.
            for w in issued.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
