//! # clocks — logical time for replicated systems
//!
//! The consistency taxonomy in Bernstein & Das's tutorial rests on
//! *happens-before*: session guarantees, causal consistency, and convergent
//! conflict resolution are all phrased in terms of which events a replica
//! has seen. This crate provides the standard machinery:
//!
//! * [`LamportClock`] — scalar logical clocks (Lamport 1978); totally
//!   ordered, used for last-writer-wins timestamps.
//! * [`VectorClock`] — one counter per actor; captures happens-before
//!   exactly, at the price of `O(actors)` space.
//! * [`VersionVector`] — the same lattice as a vector clock but used to
//!   summarize *sets of writes seen by a replica*; the workhorse of session
//!   guarantees and anti-entropy.
//! * [`Dot`] / [`DottedVersionVector`] — a version vector plus one explicit
//!   "dot", resolving the classic sibling-explosion problem of plain
//!   version vectors in multi-value registers.
//! * [`HybridClock`] — hybrid logical clocks (physical time + logical
//!   counter), used when timestamps must be close to real time *and*
//!   respect causality.
//!
//! All clock types are join-semilattices under their merge operation; the
//! property tests in each module check commutativity, associativity,
//! idempotence, and monotonicity.

pub mod hlc;
pub mod lamport;
pub mod ordering;
pub mod vector;

pub use hlc::{HybridClock, HybridTimestamp};
pub use lamport::{LamportClock, LamportTimestamp};
pub use ordering::CausalOrd;
pub use vector::{Dot, DottedVersionVector, VectorClock, VersionVector};

/// Identifies an actor (replica or client session) in a logical clock.
///
/// Plain `u64` rather than a newtype so that callers can use whatever id
/// space they already have (simnet `NodeId.0 as u64`, session ids, ...).
pub type ActorId = u64;
