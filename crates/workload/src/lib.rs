//! # workload — synthetic workload generation
//!
//! Experiments drive the replicated store with synthetic workloads in the
//! YCSB tradition: a key-popularity distribution ([`KeyDistribution`],
//! including the standard Zipfian generator), an operation mix
//! ([`OpMix`] with the YCSB A–D presets), and an arrival process
//! ([`Arrival`]: open/Poisson or closed/think-time). [`WorkloadSpec`]
//! bundles the three plus the key-space size.
//!
//! Everything samples through `rand::Rng`, so feeding a seeded
//! `simnet::SimRng` makes workloads fully deterministic.

pub mod arrival;
pub mod keys;
pub mod mix;
pub mod sessions;
pub mod spec;

pub use arrival::Arrival;
pub use keys::{KeyDistribution, ZipfSampler};
pub use mix::{OpMix, WorkloadOp};
pub use sessions::{SessionKind, SessionWorkload};
pub use spec::WorkloadSpec;
