//! Key-popularity distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How keys are chosen from a key space of size `n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with skew parameter `theta` (YCSB uses 0.99). Higher theta
    /// = more skew; theta must be in `(0, 1)` for this generator.
    Zipfian {
        /// Skew parameter in `(0, 1)`.
        theta: f64,
    },
    /// A fraction `hot_fraction` of the key space receives
    /// `hot_probability` of the accesses, uniformly within each class.
    Hotspot {
        /// Fraction of keys that are "hot" (in `(0, 1]`).
        hot_fraction: f64,
        /// Probability an access targets a hot key (in `[0, 1]`).
        hot_probability: f64,
    },
    /// Round-robin over the key space (deterministic scans).
    Sequential,
}

impl KeyDistribution {
    /// The standard YCSB Zipfian skew.
    pub fn zipfian_default() -> Self {
        KeyDistribution::Zipfian { theta: 0.99 }
    }

    /// Build a stateful sampler for a key space of `n` keys.
    ///
    /// # Panics
    /// If `n == 0`, or parameters are out of range.
    pub fn sampler(&self, n: u64) -> KeySampler {
        assert!(n > 0, "key space must be non-empty");
        let kind = match self {
            KeyDistribution::Uniform => SamplerKind::Uniform,
            KeyDistribution::Zipfian { theta } => SamplerKind::Zipfian(ZipfSampler::new(n, *theta)),
            KeyDistribution::Hotspot { hot_fraction, hot_probability } => {
                assert!(
                    (0.0..=1.0).contains(hot_probability),
                    "hot_probability must be a probability"
                );
                assert!(
                    *hot_fraction > 0.0 && *hot_fraction <= 1.0,
                    "hot_fraction must be in (0, 1]"
                );
                let hot = ((n as f64 * hot_fraction).ceil() as u64).clamp(1, n);
                SamplerKind::Hotspot { hot, p: *hot_probability }
            }
            KeyDistribution::Sequential => SamplerKind::Sequential { next: 0 },
        };
        KeySampler { n, kind }
    }
}

/// A stateful key sampler (see [`KeyDistribution::sampler`]).
#[derive(Debug, Clone)]
pub struct KeySampler {
    n: u64,
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Uniform,
    Zipfian(ZipfSampler),
    Hotspot { hot: u64, p: f64 },
    Sequential { next: u64 },
}

impl KeySampler {
    /// Draw the next key in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        match &mut self.kind {
            SamplerKind::Uniform => rng.random_range(0..self.n),
            SamplerKind::Zipfian(z) => z.sample(rng),
            SamplerKind::Hotspot { hot, p } => {
                if rng.random::<f64>() < *p {
                    rng.random_range(0..*hot)
                } else if *hot < self.n {
                    rng.random_range(*hot..self.n)
                } else {
                    rng.random_range(0..self.n)
                }
            }
            SamplerKind::Sequential { next } => {
                let k = *next;
                *next = (*next + 1) % self.n;
                k
            }
        }
    }

    /// Size of the key space.
    pub fn key_space(&self) -> u64 {
        self.n
    }
}

/// The YCSB Zipfian generator (Gray et al.'s rejection-free algorithm with
/// precomputed zeta), skew `theta` in `(0, 1)`.
///
/// Rank 0 is the most popular key. To decorrelate rank from key id (YCSB's
/// "scrambled zipfian"), callers can hash the returned rank; the
/// experiments here keep rank = key id so "hot keys" are known a priori.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Create a sampler over `[0, n)` with skew `theta`.
    ///
    /// # Panics
    /// If `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta_theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_theta / zeta_n);
        let _ = zeta_theta; // folded into eta above
        ZipfSampler { n, theta, zeta_n, alpha, eta }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // O(n) precomputation; key spaces in the experiments are <= 1e6.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw a rank in `[0, n)` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Theoretical probability of rank `k` (for test assertions).
    pub fn probability(&self, k: u64) -> f64 {
        assert!(k < self.n);
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zeta_n
    }

    /// Access `zeta_theta` (exposed for diagnostics).
    pub fn skew(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_covers_key_space() {
        let mut s = KeyDistribution::Uniform.sampler(10);
        let mut seen = [false; 10];
        let mut r = rng(1);
        for _ in 0..1000 {
            seen[s.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
        assert_eq!(s.key_space(), 10);
    }

    #[test]
    fn zipfian_is_skewed_toward_rank_zero() {
        let mut s = ZipfSampler::new(1000, 0.99);
        let mut r = rng(2);
        let n = 20_000;
        let mut counts = vec![0u64; 1000];
        for _ in 0..n {
            counts[s.sample(&mut r) as usize] += 1;
        }
        // Rank 0 should get far more than uniform share (1/1000 of 20k = 20).
        assert!(counts[0] > 1000, "rank0 count {}", counts[0]);
        // Top 10 ranks should dominate the bottom half.
        let top10: u64 = counts[..10].iter().sum();
        let bottom500: u64 = counts[500..].iter().sum();
        assert!(top10 > bottom500, "top10 {top10} bottom500 {bottom500}");
    }

    #[test]
    fn zipfian_empirical_matches_theory_for_rank0() {
        let mut s = ZipfSampler::new(100, 0.9);
        let p0 = s.probability(0);
        let mut r = rng(3);
        let n = 50_000;
        let hits = (0..n).filter(|_| s.sample(&mut r) == 0).count();
        let emp = hits as f64 / n as f64;
        assert!((emp - p0).abs() < 0.02, "empirical {emp:.4} vs theoretical {p0:.4}");
    }

    #[test]
    fn zipfian_probabilities_sum_to_one() {
        let s = ZipfSampler::new(50, 0.5);
        let total: f64 = (0..50).map(|k| s.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(s.probability(0) > s.probability(1));
        assert!((s.skew() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hotspot_concentrates_on_hot_set() {
        let mut s =
            KeyDistribution::Hotspot { hot_fraction: 0.1, hot_probability: 0.9 }.sampler(100);
        let mut r = rng(4);
        let n = 10_000;
        let hot_hits = (0..n).filter(|_| s.sample(&mut r) < 10).count();
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.03, "hot fraction {frac}");
    }

    #[test]
    fn hotspot_all_hot_degenerate() {
        let mut s =
            KeyDistribution::Hotspot { hot_fraction: 1.0, hot_probability: 0.5 }.sampler(10);
        let mut r = rng(5);
        for _ in 0..100 {
            assert!(s.sample(&mut r) < 10);
        }
    }

    #[test]
    fn sequential_round_robins() {
        let mut s = KeyDistribution::Sequential.sampler(3);
        let mut r = rng(6);
        let got: Vec<u64> = (0..7).map(|_| s.sample(&mut r)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn samples_always_in_range() {
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::zipfian_default(),
            KeyDistribution::Hotspot { hot_fraction: 0.2, hot_probability: 0.8 },
            KeyDistribution::Sequential,
        ] {
            let mut s = dist.sampler(17);
            let mut r = rng(7);
            for _ in 0..500 {
                assert!(s.sample(&mut r) < 17);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_keys_panics() {
        KeyDistribution::Uniform.sampler(0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_panics() {
        ZipfSampler::new(10, 1.5);
    }
}
