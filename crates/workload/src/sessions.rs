//! Session-structured workloads: the tutorial's motivating applications
//! as op-sequence generators.
//!
//! Unlike the i.i.d. YCSB mixes in [`crate::spec`], these scripts have
//! *structure*: a shopping session re-reads its own cart (the pattern that
//! makes read-your-writes matter), and a social session reads a timeline
//! that other sessions write (the pattern that makes causal consistency
//! matter). Key spaces are partitioned so experiments can tell cart keys
//! from catalog keys.

use crate::mix::WorkloadOp;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which archetype to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// Browse the catalog, add to the own cart, re-read the cart, check
    /// out: heavy read-your-writes pressure on the session's cart key.
    ShoppingCart,
    /// Post to the own wall, read followees' walls, reply: cross-session
    /// reads-from chains (causal pressure).
    SocialTimeline,
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionWorkload {
    /// Archetype.
    pub kind: SessionKind,
    /// Number of sessions (each owns one cart / wall key).
    pub sessions: u32,
    /// Shared keys (catalog items / global feeds).
    pub shared_keys: u64,
    /// "Rounds" per session (each round emits several ops).
    pub rounds: u32,
    /// Think time between ops, µs.
    pub think_us: u64,
}

impl SessionWorkload {
    /// A small shopping workload.
    pub fn shopping(sessions: u32) -> Self {
        SessionWorkload {
            kind: SessionKind::ShoppingCart,
            sessions,
            shared_keys: 20,
            rounds: 10,
            think_us: 5_000,
        }
    }

    /// A small social workload.
    pub fn social(sessions: u32) -> Self {
        SessionWorkload {
            kind: SessionKind::SocialTimeline,
            sessions,
            shared_keys: 10,
            rounds: 10,
            think_us: 5_000,
        }
    }

    /// The private key owned by `session` (carts / walls live above the
    /// shared key space).
    pub fn own_key(&self, session: u32) -> u64 {
        self.shared_keys + session as u64
    }

    /// Generate the script for `session`: `(gap_us, op, key)` triples,
    /// deterministic in the RNG.
    pub fn session_script<R: Rng + ?Sized>(
        &self,
        session: u32,
        rng: &mut R,
    ) -> Vec<(u64, WorkloadOp, u64)> {
        assert!(session < self.sessions, "session out of range");
        let mut ops = Vec::new();
        let own = self.own_key(session);
        for _ in 0..self.rounds {
            match self.kind {
                SessionKind::ShoppingCart => {
                    // Browse 2 catalog items.
                    for _ in 0..2 {
                        let item = rng.random_range(0..self.shared_keys);
                        ops.push((self.think_us, WorkloadOp::Read, item));
                    }
                    // Add to own cart (RMW), then re-read it — the op
                    // pair session guarantees exist for.
                    ops.push((self.think_us, WorkloadOp::ReadModifyWrite, own));
                    ops.push((self.think_us / 2, WorkloadOp::Read, own));
                }
                SessionKind::SocialTimeline => {
                    // Post to own wall.
                    ops.push((self.think_us, WorkloadOp::Write, own));
                    // Read two other walls (uniform over sessions).
                    for _ in 0..2 {
                        let other = rng.random_range(0..self.sessions);
                        ops.push((self.think_us, WorkloadOp::Read, self.own_key(other)));
                    }
                    // Read a shared feed, sometimes reply to it.
                    let feed = rng.random_range(0..self.shared_keys);
                    ops.push((self.think_us, WorkloadOp::Read, feed));
                    if rng.random::<f64>() < 0.3 {
                        ops.push((self.think_us / 2, WorkloadOp::Write, feed));
                    }
                }
            }
        }
        ops
    }

    /// Total key-space size (shared + one per session).
    pub fn key_space(&self) -> u64 {
        self.shared_keys + self.sessions as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shopping_script_rereads_own_cart_after_update() {
        let w = SessionWorkload::shopping(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let script = w.session_script(2, &mut rng);
        let own = w.own_key(2);
        // Every RMW on the cart is followed by a read of the same cart.
        let mut found_pairs = 0;
        for pair in script.windows(2) {
            if pair[0].1 == WorkloadOp::ReadModifyWrite && pair[0].2 == own {
                assert_eq!(pair[1], (w.think_us / 2, WorkloadOp::Read, own));
                found_pairs += 1;
            }
        }
        assert_eq!(found_pairs, 10, "one RMW+re-read pair per round");
    }

    #[test]
    fn shopping_browses_only_shared_keys() {
        let w = SessionWorkload::shopping(4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let script = w.session_script(0, &mut rng);
        for (_, op, key) in &script {
            if *key < w.shared_keys {
                assert_eq!(*op, WorkloadOp::Read, "catalog items are read-only");
            } else {
                assert_eq!(*key, w.own_key(0), "sessions touch only their own cart");
            }
        }
    }

    #[test]
    fn social_sessions_read_each_others_walls() {
        let w = SessionWorkload::social(6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let script = w.session_script(1, &mut rng);
        let wall_reads = script
            .iter()
            .filter(|(_, op, key)| {
                *op == WorkloadOp::Read && *key >= w.shared_keys && *key != w.own_key(1)
            })
            .count();
        assert!(wall_reads > 0, "must read other sessions' walls");
        // Own wall is written every round.
        let own_posts = script
            .iter()
            .filter(|(_, op, key)| *op == WorkloadOp::Write && *key == w.own_key(1))
            .count();
        assert_eq!(own_posts, 10);
    }

    #[test]
    fn scripts_deterministic_per_seed() {
        let w = SessionWorkload::social(3);
        let a = w.session_script(0, &mut ChaCha8Rng::seed_from_u64(7));
        let b = w.session_script(0, &mut ChaCha8Rng::seed_from_u64(7));
        let c = w.session_script(0, &mut ChaCha8Rng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn key_space_covers_all_keys() {
        let w = SessionWorkload::shopping(5);
        assert_eq!(w.key_space(), 25);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for s in 0..5 {
            for (_, _, key) in w.session_script(s, &mut rng) {
                assert!(key < w.key_space());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_session_panics() {
        let w = SessionWorkload::shopping(2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        w.session_script(9, &mut rng);
    }
}
