//! Workload specifications: the bundle experiments configure.

use crate::arrival::Arrival;
use crate::keys::{KeyDistribution, KeySampler};
use crate::mix::{OpMix, WorkloadOp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A complete workload description for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Size of the key space.
    pub keys: u64,
    /// Key popularity.
    pub distribution: KeyDistribution,
    /// Read/write/RMW mix.
    pub mix: OpMix,
    /// Arrival process per session.
    pub arrival: Arrival,
    /// Number of client sessions.
    pub sessions: u32,
    /// Operations issued per session.
    pub ops_per_session: u32,
}

impl WorkloadSpec {
    /// A small read-mostly default suitable for quick tests.
    pub fn small() -> Self {
        WorkloadSpec {
            keys: 100,
            distribution: KeyDistribution::Uniform,
            mix: OpMix::ycsb_b(),
            arrival: Arrival::Closed { think_us: 1_000 },
            sessions: 4,
            ops_per_session: 50,
        }
    }

    /// Total operations across all sessions.
    pub fn total_ops(&self) -> u64 {
        self.sessions as u64 * self.ops_per_session as u64
    }

    /// Build a per-session operation script: `(gap_us, op, key)` triples.
    ///
    /// For closed-loop arrivals `gap_us` is think time after the previous
    /// *response*; for open-loop it is the gap after the previous *issue*.
    pub fn session_script<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<(u64, WorkloadOp, u64)> {
        let mut sampler: KeySampler = self.distribution.sampler(self.keys);
        (0..self.ops_per_session)
            .map(|_| {
                let gap = self.arrival.next_gap_us(rng);
                let op = self.mix.sample(rng);
                let key = sampler.sample(rng);
                (gap, op, key)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn total_ops() {
        let spec = WorkloadSpec { sessions: 3, ops_per_session: 7, ..WorkloadSpec::small() };
        assert_eq!(spec.total_ops(), 21);
    }

    #[test]
    fn script_has_requested_length_and_valid_keys() {
        let spec = WorkloadSpec::small();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let script = spec.session_script(&mut rng);
        assert_eq!(script.len(), 50);
        assert!(script.iter().all(|&(_, _, k)| k < spec.keys));
    }

    #[test]
    fn script_is_deterministic_per_seed() {
        let spec = WorkloadSpec::small();
        let s1 = spec.session_script(&mut ChaCha8Rng::seed_from_u64(7));
        let s2 = spec.session_script(&mut ChaCha8Rng::seed_from_u64(7));
        let s3 = spec.session_script(&mut ChaCha8Rng::seed_from_u64(8));
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn read_only_mix_yields_read_only_script() {
        let spec = WorkloadSpec { mix: OpMix::ycsb_c(), ..WorkloadSpec::small() };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(spec.session_script(&mut rng).iter().all(|&(_, op, _)| op == WorkloadOp::Read));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = WorkloadSpec::small();
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
