//! Operation mixes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An operation drawn from a mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadOp {
    /// Read a key.
    Read,
    /// Overwrite a key.
    Write,
    /// Read-modify-write a key (read then write, same key).
    ReadModifyWrite,
}

/// A read/write/RMW mix. Fractions must sum to at most 1; the remainder is
/// assigned to reads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Fraction of plain writes.
    pub write_fraction: f64,
    /// Fraction of read-modify-writes.
    pub rmw_fraction: f64,
}

impl OpMix {
    /// Build a mix; panics if fractions are out of range.
    pub fn new(write_fraction: f64, rmw_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&write_fraction), "write fraction out of range");
        assert!((0.0..=1.0).contains(&rmw_fraction), "rmw fraction out of range");
        assert!(write_fraction + rmw_fraction <= 1.0 + 1e-12, "fractions exceed 1");
        OpMix { write_fraction, rmw_fraction }
    }

    /// YCSB workload A: update-heavy, 50% reads / 50% writes.
    pub fn ycsb_a() -> Self {
        OpMix::new(0.5, 0.0)
    }

    /// YCSB workload B: read-mostly, 95% reads / 5% writes.
    pub fn ycsb_b() -> Self {
        OpMix::new(0.05, 0.0)
    }

    /// YCSB workload C: read-only.
    pub fn ycsb_c() -> Self {
        OpMix::new(0.0, 0.0)
    }

    /// YCSB workload F: read-modify-write heavy (50% reads / 50% RMW).
    pub fn ycsb_f() -> Self {
        OpMix::new(0.0, 0.5)
    }

    /// Write-only (replication-pressure stress).
    pub fn write_only() -> Self {
        OpMix::new(1.0, 0.0)
    }

    /// Fraction of plain reads.
    pub fn read_fraction(&self) -> f64 {
        1.0 - self.write_fraction - self.rmw_fraction
    }

    /// Draw the next operation kind.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> WorkloadOp {
        let u: f64 = rng.random();
        if u < self.write_fraction {
            WorkloadOp::Write
        } else if u < self.write_fraction + self.rmw_fraction {
            WorkloadOp::ReadModifyWrite
        } else {
            WorkloadOp::Read
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn presets_have_expected_fractions() {
        assert_eq!(OpMix::ycsb_a().write_fraction, 0.5);
        assert_eq!(OpMix::ycsb_b().write_fraction, 0.05);
        assert_eq!(OpMix::ycsb_c().read_fraction(), 1.0);
        assert_eq!(OpMix::ycsb_f().rmw_fraction, 0.5);
        assert_eq!(OpMix::write_only().read_fraction(), 0.0);
    }

    #[test]
    fn sample_respects_fractions() {
        let mix = OpMix::new(0.3, 0.2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 30_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            match mix.sample(&mut rng) {
                WorkloadOp::Read => counts[0] += 1,
                WorkloadOp::Write => counts[1] += 1,
                WorkloadOp::ReadModifyWrite => counts[2] += 1,
            }
        }
        let frac = |c: u64| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.5).abs() < 0.02);
        assert!((frac(counts[1]) - 0.3).abs() < 0.02);
        assert!((frac(counts[2]) - 0.2).abs() < 0.02);
    }

    #[test]
    fn read_only_never_writes() {
        let mix = OpMix::ycsb_c();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(mix.sample(&mut rng), WorkloadOp::Read);
        }
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn overfull_mix_panics() {
        OpMix::new(0.8, 0.5);
    }
}
