//! Arrival processes: when does the next operation start?

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The arrival process for a client session, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Closed loop: issue the next op a fixed think time after the
    /// previous response.
    Closed {
        /// Think time between response and next request (µs).
        think_us: u64,
    },
    /// Open loop with Poisson arrivals at the given mean rate.
    Open {
        /// Mean operations per second.
        ops_per_sec: f64,
    },
    /// Open loop with fixed spacing.
    Periodic {
        /// Gap between consecutive ops (µs).
        period_us: u64,
    },
}

impl Arrival {
    /// Sample the gap (µs) before the next operation.
    pub fn next_gap_us<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            Arrival::Closed { think_us } => think_us,
            Arrival::Open { ops_per_sec } => {
                assert!(ops_per_sec > 0.0, "rate must be positive");
                let mean_us = 1_000_000.0 / ops_per_sec;
                let u: f64 = 1.0 - rng.random::<f64>();
                (-mean_us * u.ln()).round().max(1.0) as u64
            }
            Arrival::Periodic { period_us } => period_us,
        }
    }

    /// True for closed-loop processes (the gap starts at response time, not
    /// at previous-issue time).
    pub fn is_closed(&self) -> bool {
        matches!(self, Arrival::Closed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn closed_gap_is_constant() {
        let a = Arrival::Closed { think_us: 500 };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(a.next_gap_us(&mut rng), 500);
        }
        assert!(a.is_closed());
    }

    #[test]
    fn periodic_gap_is_constant() {
        let a = Arrival::Periodic { period_us: 250 };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(a.next_gap_us(&mut rng), 250);
        assert!(!a.is_closed());
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let a = Arrival::Open { ops_per_sec: 1000.0 }; // mean gap 1000us
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| a.next_gap_us(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 30.0, "mean gap {mean}");
    }

    #[test]
    fn gaps_are_positive() {
        let a = Arrival::Open { ops_per_sec: 1_000_000.0 };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(a.next_gap_us(&mut rng) >= 1);
        }
    }
}
